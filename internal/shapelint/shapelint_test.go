package shapelint

import (
	"strings"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

const ns = "http://x/"

func iri(local string) rdf.Term { return rdf.NewIRI(ns + local) }

func prop(local string) paths.Expr { return paths.P(ns + local) }

// mustSchema builds a schema from (name, shape, target) triples.
func mustSchema(t *testing.T, defs ...schema.Definition) *schema.Schema {
	t.Helper()
	h, err := schema.New(defs...)
	if err != nil {
		t.Fatalf("schema.New: %v", err)
	}
	return h
}

func def(name string, body, target shape.Shape) schema.Definition {
	return schema.Definition{Name: iri(name), Shape: body, Target: target}
}

// codesOf returns the distinct codes reported against the named shape.
func codesOf(diags []Diagnostic, name rdf.Term) map[string]bool {
	out := map[string]bool{}
	for _, d := range diags {
		if d.Shape == name {
			out[d.Code] = true
		}
	}
	return out
}

func wantCodes(t *testing.T, diags []Diagnostic, name rdf.Term, want ...string) {
	t.Helper()
	got := codesOf(diags, name)
	for _, w := range want {
		if !got[w] {
			t.Errorf("shape %s: missing %s in findings %v", name, w, diags)
		}
	}
}

func wantNoCode(t *testing.T, diags []Diagnostic, code string) {
	t.Helper()
	for _, d := range diags {
		if d.Code == code {
			t.Errorf("unexpected %s: %s", code, d)
		}
	}
}

var anyTarget = schema.TargetClass(rdf.NewIRI(ns + "C"))

func TestCleanShapeHasNoFindings(t *testing.T) {
	h := mustSchema(t,
		def("s", shape.AndOf(
			shape.Min(1, prop("name"), shape.TrueShape()),
			shape.Max(3, prop("name"), shape.TrueShape()),
			shape.All(prop("age"), shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDInteger})),
		), anyTarget),
	)
	if diags := Run(h); len(diags) != 0 {
		t.Fatalf("clean schema produced findings: %v", diags)
	}
}

func TestCardinalityContradiction(t *testing.T) {
	h := mustSchema(t,
		def("s", shape.AndOf(
			shape.Min(3, prop("p"), shape.TrueShape()),
			shape.Max(1, prop("p"), shape.TrueShape()),
		), anyTarget),
	)
	diags := Run(h)
	wantCodes(t, diags, iri("s"), CodeCardinality, CodeUnsat)
}

func TestMinAgainstForall(t *testing.T) {
	// ≥1 p.⊤ ∧ ∀p.⊥-ish body: required successors cannot satisfy the
	// universal constraint.
	h := mustSchema(t,
		def("s", shape.AndOf(
			shape.Min(1, prop("p"), shape.TrueShape()),
			shape.All(prop("p"), shape.AndOf(
				shape.NodeTestShape(shape.IsIRI{}),
				shape.NodeTestShape(shape.IsLiteral{}),
			)),
		), anyTarget),
	)
	diags := Run(h)
	wantCodes(t, diags, iri("s"), CodeCardinality, CodeContradiction, CodeUnsat)
}

func TestContradictoryNodeTests(t *testing.T) {
	cases := []struct {
		name string
		a, b shape.NodeTest
	}{
		{"kinds", shape.IsIRI{}, shape.IsLiteral{}},
		{"datatypes", shape.Datatype{IRI: rdf.XSDInteger}, shape.Datatype{IRI: rdf.XSDString}},
		{"datatype-vs-iri", shape.Datatype{IRI: rdf.XSDInteger}, shape.IsIRI{}},
		{"lang-vs-datatype", shape.HasLang{Tag: "en"}, shape.Datatype{IRI: rdf.XSDString}},
		{"langs", shape.HasLang{Tag: "en"}, shape.HasLang{Tag: "de"}},
		{"lengths", shape.MinLength{N: 5}, shape.MaxLength{N: 2}},
		{"range", shape.MinInclusive{Bound: rdf.NewInteger(10)}, shape.MaxInclusive{Bound: rdf.NewInteger(3)}},
		{"open-range", shape.MinExclusive{Bound: rdf.NewInteger(3)}, shape.MaxExclusive{Bound: rdf.NewInteger(3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := mustSchema(t, def("s", shape.AndOf(
				shape.NodeTestShape(tc.a), shape.NodeTestShape(tc.b),
			), anyTarget))
			diags := Run(h)
			wantCodes(t, diags, iri("s"), CodeContradiction, CodeUnsat)
		})
	}
}

func TestCompatibleNodeTestsPass(t *testing.T) {
	cases := []struct {
		name string
		a, b shape.NodeTest
	}{
		{"same-datatype", shape.Datatype{IRI: rdf.XSDInteger}, shape.Datatype{IRI: rdf.XSDInteger}},
		{"lang-langString", shape.HasLang{Tag: "en"}, shape.Datatype{IRI: rdf.RDFLangString}},
		{"lengths-ok", shape.MinLength{N: 2}, shape.MaxLength{N: 5}},
		{"range-ok", shape.MinInclusive{Bound: rdf.NewInteger(3)}, shape.MaxInclusive{Bound: rdf.NewInteger(10)}},
		{"incomparable-bounds", shape.MinInclusive{Bound: rdf.NewInteger(3)}, shape.MaxInclusive{Bound: rdf.NewString("zz")}},
		{"anyof-overlap", shape.AnyOf{Tests: []shape.NodeTest{shape.IsIRI{}, shape.IsLiteral{}}}, shape.IsLiteral{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := mustSchema(t, def("s", shape.AndOf(
				shape.NodeTestShape(tc.a), shape.NodeTestShape(tc.b),
			), anyTarget))
			diags := Run(h)
			wantNoCode(t, diags, CodeContradiction)
			wantNoCode(t, diags, CodeUnsat)
		})
	}
}

func TestHasValueConflicts(t *testing.T) {
	t.Run("two-constants", func(t *testing.T) {
		h := mustSchema(t, def("s", shape.AndOf(
			shape.Value(iri("a")), shape.Value(iri("b")),
		), anyTarget))
		wantCodes(t, Run(h), iri("s"), CodeContradiction, CodeUnsat)
	})
	t.Run("constant-fails-test", func(t *testing.T) {
		h := mustSchema(t, def("s", shape.AndOf(
			shape.Value(iri("a")), shape.NodeTestShape(shape.IsLiteral{}),
		), anyTarget))
		wantCodes(t, Run(h), iri("s"), CodeContradiction, CodeUnsat)
	})
	t.Run("constant-satisfies-negated-test", func(t *testing.T) {
		h := mustSchema(t, def("s", shape.AndOf(
			shape.Value(iri("a")), shape.Neg(shape.NodeTestShape(shape.IsIRI{})),
		), anyTarget))
		wantCodes(t, Run(h), iri("s"), CodeContradiction, CodeUnsat)
	})
}

func TestComplementConjunction(t *testing.T) {
	phi := shape.EqPath(prop("p"), ns+"q")
	h := mustSchema(t, def("s", shape.AndOf(phi, shape.Neg(phi)), anyTarget))
	wantCodes(t, Run(h), iri("s"), CodeContradiction, CodeUnsat)
}

func TestClosedVersusRequired(t *testing.T) {
	h := mustSchema(t, def("s", shape.AndOf(
		shape.ClosedShape(ns+"allowed"),
		shape.Min(1, paths.SeqOf(prop("forbidden"), prop("x")), shape.TrueShape()),
	), anyTarget))
	wantCodes(t, Run(h), iri("s"), CodeClosed, CodeUnsat)
}

func TestClosedAllowsListedProperty(t *testing.T) {
	h := mustSchema(t, def("s", shape.AndOf(
		shape.ClosedShape(ns+"p"),
		shape.Min(1, prop("p"), shape.TrueShape()),
	), anyTarget))
	diags := Run(h)
	wantNoCode(t, diags, CodeClosed)
	wantNoCode(t, diags, CodeUnsat)
}

func TestClosedIgnoresInversePaths(t *testing.T) {
	// Closedness constrains outgoing edges only; an inverse first step is
	// not a conflict.
	h := mustSchema(t, def("s", shape.AndOf(
		shape.ClosedShape(ns+"p"),
		shape.Min(1, paths.Inv(prop("q")), shape.TrueShape()),
	), anyTarget))
	wantNoCode(t, Run(h), CodeClosed)
}

func TestEqDisjConflict(t *testing.T) {
	t.Run("on-id-is-error", func(t *testing.T) {
		h := mustSchema(t, def("s", shape.AndOf(
			shape.EqID(ns+"p"), shape.DisjID(ns+"p"),
		), anyTarget))
		wantCodes(t, Run(h), iri("s"), CodeContradiction, CodeUnsat)
	})
	t.Run("on-path-is-warning", func(t *testing.T) {
		h := mustSchema(t, def("s", shape.AndOf(
			shape.EqPath(prop("e"), ns+"p"), shape.DisjPath(prop("e"), ns+"p"),
		), anyTarget))
		diags := Run(h)
		wantCodes(t, diags, iri("s"), CodeContradiction)
		wantNoCode(t, diags, CodeUnsat)
		for _, d := range diags {
			if d.Code == CodeContradiction && d.Severity != Warning {
				t.Errorf("eq/disj on a path should be a warning, got %s", d)
			}
		}
	})
}

func TestTrivialShape(t *testing.T) {
	h := mustSchema(t, def("s", shape.TrueShape(), anyTarget))
	wantCodes(t, Run(h), iri("s"), CodeTrivial)
}

func TestUnsatThroughReference(t *testing.T) {
	// s2 is ⊥; s1 references it and becomes ⊥ by inlining.
	h := mustSchema(t,
		def("s1", shape.Ref(iri("s2")), anyTarget),
		def("s2", shape.AndOf(
			shape.NodeTestShape(shape.IsIRI{}),
			shape.NodeTestShape(shape.IsBlank{}),
		), nil),
	)
	diags := Run(h)
	wantCodes(t, diags, iri("s1"), CodeUnsat)
	wantCodes(t, diags, iri("s2"), CodeContradiction, CodeUnsat)
	// The contradiction inside s2 must be attributed to s2, not s1.
	for _, d := range diags {
		if d.Code == CodeContradiction && d.Shape != iri("s2") {
			t.Errorf("contradiction attributed to %s, want s2", d.Shape)
		}
	}
}

func TestNegatedUnsatReferenceIsTrivial(t *testing.T) {
	// ¬hasShape(⊥-shape) is ⊤: s1 gets SL002, not SL001.
	h := mustSchema(t,
		def("s1", shape.Neg(shape.Ref(iri("s2"))), anyTarget),
		def("s2", shape.AndOf(shape.Value(iri("a")), shape.Value(iri("b"))), nil),
	)
	diags := Run(h)
	wantCodes(t, diags, iri("s1"), CodeTrivial)
	wantCodes(t, diags, iri("s2"), CodeUnsat)
}

func TestDeadShape(t *testing.T) {
	h := mustSchema(t,
		def("live", shape.Min(1, prop("p"), shape.TrueShape()), anyTarget),
		def("orphan", shape.Min(1, prop("q"), shape.TrueShape()), nil),
		def("helper", shape.Min(1, prop("r"), shape.TrueShape()), nil),
		def("uses-helper", shape.Ref(iri("helper")), anyTarget),
	)
	diags := Run(h)
	wantCodes(t, diags, iri("orphan"), CodeDead)
	for _, d := range diags {
		if d.Code == CodeDead && d.Shape != iri("orphan") {
			t.Errorf("unexpected dead shape %s", d.Shape)
		}
	}
}

func TestShadowedDisjuncts(t *testing.T) {
	t.Run("duplicate", func(t *testing.T) {
		dup := shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDString})
		h := mustSchema(t, def("s", shape.OrOf(
			dup, shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDString}),
		), anyTarget))
		wantCodes(t, Run(h), iri("s"), CodeShadowed)
	})
	t.Run("unsat-disjunct", func(t *testing.T) {
		h := mustSchema(t, def("s", shape.OrOf(
			shape.AndOf(shape.NodeTestShape(shape.IsIRI{}), shape.NodeTestShape(shape.IsLiteral{})),
			shape.NodeTestShape(shape.IsIRI{}),
		), anyTarget))
		diags := Run(h)
		wantCodes(t, diags, iri("s"), CodeShadowed, CodeContradiction)
		wantNoCode(t, diags, CodeUnsat)
	})
}

func TestExpensivePaths(t *testing.T) {
	star := paths.Star{X: prop("knows")}
	cases := []struct {
		name string
		body shape.Shape
		want bool
	}{
		{"max-star", shape.Max(2, star, shape.TrueShape()), true},
		{"forall-star", shape.All(star, shape.NodeTestShape(shape.IsIRI{})), true},
		{"eq-star", shape.EqPath(star, ns+"p"), true},
		{"uniquelang-star", shape.UniqueLangShape(star), true},
		{"negated-min-star", shape.Neg(shape.Min(1, star, shape.TrueShape())), true},
		{"min-star-is-cheap", shape.Min(1, star, shape.TrueShape()), false},
		{"max-plain", shape.Max(2, prop("knows"), shape.TrueShape()), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := mustSchema(t, def("s", tc.body, anyTarget))
			got := codesOf(Run(h), iri("s"))[CodeExpensivePath]
			if got != tc.want {
				t.Errorf("expensive-path finding = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestUndefinedReference(t *testing.T) {
	h := mustSchema(t, def("s", shape.AndOf(
		shape.Ref(iri("missing")),
		shape.Min(1, prop("p"), shape.TrueShape()),
	), anyTarget))
	diags := Run(h)
	wantCodes(t, diags, iri("s"), CodeUndefinedRef)
	wantNoCode(t, diags, CodeUnsat)
}

func TestRunIsDeterministic(t *testing.T) {
	build := func() *schema.Schema {
		return mustSchema(t,
			def("a", shape.AndOf(
				shape.Min(3, prop("p"), shape.TrueShape()),
				shape.Max(1, prop("p"), shape.TrueShape()),
				shape.NodeTestShape(shape.IsIRI{}),
				shape.NodeTestShape(shape.IsLiteral{}),
			), anyTarget),
			def("b", shape.Ref(iri("a")), anyTarget),
			def("dead", shape.Min(1, prop("q"), shape.TrueShape()), nil),
		)
	}
	first := fmtDiags(Run(build()))
	for i := 0; i < 5; i++ {
		if got := fmtDiags(Run(build())); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func fmtDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestBenchmarkShapesLintCleanOfErrors(t *testing.T) {
	// The default fragserver startup schema must never be refused.
	h, err := schema.New(datagen.BenchmarkShapes()...)
	if err != nil {
		t.Fatalf("schema.New: %v", err)
	}
	diags := Run(h)
	if errs := Errors(diags); len(errs) > 0 {
		t.Fatalf("benchmark shapes have lint errors: %v", errs)
	}
}

func TestSeverityAndDiagnosticString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Info.String() != "info" {
		t.Fatal("severity strings changed")
	}
	d := Diagnostic{Code: CodeUnsat, Severity: Error, Shape: iri("s"), Message: "m", Detail: "x"}
	want := "SL001 error <http://x/s>: m (at x)"
	if d.String() != want {
		t.Fatalf("String() = %q, want %q", d.String(), want)
	}
	diags := []Diagnostic{{Severity: Error}, {Severity: Warning}, {Severity: Warning}}
	if Count(diags, Warning) != 2 || len(Errors(diags)) != 1 {
		t.Fatal("Count/Errors miscounted")
	}
}
