package shapelint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shapelint"
)

var update = flag.Bool("update", false, "rewrite the .golden files under examples/lint/")

// TestGoldenCorpus runs the linter over every deliberately broken shapes
// graph in examples/lint/ and compares the rendered diagnostics (code,
// severity, source IRI, message, detail) against the checked-in .golden
// files. Blank-node labels and definition order are deterministic in
// turtle + shaclsyn, so the output is stable. Regenerate after intended
// changes with:
//
//	go test ./internal/shapelint -run Golden -update
func TestGoldenCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "lint")
	files, err := filepath.Glob(filepath.Join(dir, "*.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files under %s", dir)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			_, diags, err := shaclsyn.LintSource(string(src))
			if err != nil {
				t.Fatalf("LintSource: %v", err)
			}
			if len(diags) == 0 {
				t.Fatal("corpus file produced no findings; it no longer seeds a defect")
			}
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			goldenPath := strings.TrimSuffix(file, ".ttl") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed for %s\n--- got ---\n%s--- want ---\n%s",
					filepath.Base(file), got, want)
			}
		})
	}
}

// TestGoldenCorpusCoversAllCodes keeps the corpus honest: together the
// broken files must exercise every stable SL-code the linter can emit.
func TestGoldenCorpusCoversAllCodes(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "lint", "*.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		_, diags, err := shaclsyn.LintSource(string(src))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			seen[d.Code] = true
		}
	}
	all := []string{
		shapelint.CodeUnsat, shapelint.CodeTrivial, shapelint.CodeCardinality,
		shapelint.CodeContradiction, shapelint.CodeClosed, shapelint.CodeDead,
		shapelint.CodeShadowed, shapelint.CodeExpensivePath, shapelint.CodeUndefinedRef,
		shapelint.CodeRedundant, shapelint.CodeImpliedConjunct,
	}
	for _, code := range all {
		if !seen[code] {
			t.Errorf("corpus seeds no defect for %s", code)
		}
	}
}

// TestCleanExamplesLintClean is the other half of the acceptance bar: the
// non-broken example schemas must produce zero findings of any severity.
func TestCleanExamplesLintClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "shapes", "*.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no clean example schemas found")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		_, diags, err := shaclsyn.LintSource(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if len(diags) != 0 {
			t.Errorf("%s should lint clean, got %v", filepath.Base(file), diags)
		}
	}
}
