package shapelint

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// The soundness contract behind SL001: if the linter says a shape is
// unsatisfiable, no node on ANY graph may conform to it. We test the
// contract on random shapes over the Tyrol vocabulary, evaluated
// against generated Tyrol graphs, and on a hand-built corpus that is
// guaranteed to exercise the ⊥ verdict.

type shapeGen struct{ r *rand.Rand }

func (g *shapeGen) prop() paths.Expr {
	props := []string{
		datagen.PropName, datagen.PropRating, datagen.PropPrice,
		datagen.PropLocation, datagen.PropReview, datagen.PropKnows,
		datagen.PropStartDate, datagen.PropAmenity, datagen.PropEmail,
	}
	return paths.P(props[g.r.Intn(len(props))])
}

func (g *shapeGen) term() rdf.Term {
	switch g.r.Intn(3) {
	case 0:
		return rdf.NewIRI(datagen.NS + "thing")
	case 1:
		return rdf.NewInteger(int64(g.r.Intn(5)))
	default:
		return rdf.NewString("x")
	}
}

func (g *shapeGen) test() shape.NodeTest {
	switch g.r.Intn(8) {
	case 0:
		return shape.IsIRI{}
	case 1:
		return shape.IsLiteral{}
	case 2:
		return shape.IsBlank{}
	case 3:
		return shape.Datatype{IRI: rdf.XSDInteger}
	case 4:
		return shape.Datatype{IRI: rdf.XSDString}
	case 5:
		return shape.HasLang{Tag: "en"}
	case 6:
		return shape.MinInclusive{Bound: rdf.NewInteger(int64(g.r.Intn(6)))}
	default:
		return shape.MaxInclusive{Bound: rdf.NewInteger(int64(g.r.Intn(6)))}
	}
}

// gen produces a random shape of bounded depth. Contradictions arise
// naturally from stacked conjunctions of node tests, cardinalities and
// hasValue atoms.
func (g *shapeGen) gen(depth int) shape.Shape {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return shape.TrueShape()
		case 1:
			return shape.NodeTestShape(g.test())
		case 2:
			return shape.Value(g.term())
		default:
			return shape.Min(g.r.Intn(3), g.prop(), shape.TrueShape())
		}
	}
	switch g.r.Intn(7) {
	case 0:
		n := 2 + g.r.Intn(2)
		kids := make([]shape.Shape, n)
		for i := range kids {
			kids[i] = g.gen(depth - 1)
		}
		return shape.AndOf(kids...)
	case 1:
		return shape.OrOf(g.gen(depth-1), g.gen(depth-1))
	case 2:
		return shape.Neg(g.gen(depth - 1))
	case 3:
		return shape.Min(g.r.Intn(4), g.prop(), g.gen(depth-1))
	case 4:
		return shape.Max(g.r.Intn(2), g.prop(), g.gen(depth-1))
	case 5:
		return shape.All(g.prop(), g.gen(depth-1))
	default:
		return shape.NodeTestShape(g.test())
	}
}

// assertNoConformingNode fails if any node of any test graph conforms
// to phi under the given schema.
func assertNoConformingNode(t *testing.T, h *schema.Schema, phi shape.Shape, label string) {
	t.Helper()
	for _, cfg := range []datagen.TyrolConfig{
		{Individuals: 120, Seed: 1},
		{Individuals: 200, Seed: 7, DirtyRate: 0.3},
		{Individuals: 80, Seed: 42, DirtyRate: 1.0},
	} {
		g := datagen.Tyrol(cfg)
		ev := shape.NewEvaluator(g, h)
		if nodes := ev.ConformingNodes(phi); len(nodes) > 0 {
			t.Errorf("%s: linter says unsatisfiable, but %d nodes conform on Tyrol(seed=%d) — e.g. %s\nshape: %s",
				label, len(nodes), cfg.Seed, g.Term(nodes[0]), phi)
			return
		}
	}
}

func TestUnsatVerdictIsSoundOnRandomShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	gen := &shapeGen{r: rand.New(rand.NewSource(20260805))}
	name := rdf.NewIRI(datagen.NS + "shape/underTest")
	unsat := 0
	for i := 0; i < 400; i++ {
		phi := gen.gen(3)
		h, err := schema.New(schema.Definition{Name: name, Shape: phi})
		if err != nil {
			t.Fatalf("schema.New: %v", err)
		}
		for _, d := range Run(h) {
			if d.Code == CodeUnsat && d.Shape == name {
				unsat++
				assertNoConformingNode(t, h, phi, phi.String())
				break
			}
		}
	}
	// The generator must actually produce contradictions or the test
	// proves nothing; with the fixed seed it produces a stable count.
	if unsat < 10 {
		t.Fatalf("generator produced only %d unsatisfiable shapes; property barely exercised", unsat)
	}
	t.Logf("checked %d SL001 verdicts against generated graphs", unsat)
}

func TestUnsatVerdictIsSoundOnHandBuiltShapes(t *testing.T) {
	rating := paths.P(datagen.PropRating)
	corpus := []shape.Shape{
		shape.AndOf(
			shape.Min(3, rating, shape.TrueShape()),
			shape.Max(1, rating, shape.TrueShape()),
		),
		shape.AndOf(
			shape.NodeTestShape(shape.IsIRI{}),
			shape.NodeTestShape(shape.IsLiteral{}),
		),
		shape.AndOf(
			shape.NodeTestShape(shape.MinInclusive{Bound: rdf.NewInteger(5)}),
			shape.NodeTestShape(shape.MaxInclusive{Bound: rdf.NewInteger(2)}),
		),
		shape.AndOf(
			shape.Value(rdf.NewInteger(1)),
			shape.Value(rdf.NewInteger(2)),
		),
		shape.AndOf(
			shape.ClosedShape(datagen.PropName),
			shape.Min(1, rating, shape.TrueShape()),
		),
		shape.AndOf(
			shape.Min(1, rating, shape.AndOf(
				shape.NodeTestShape(shape.HasLang{Tag: "en"}),
				shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDInteger}),
			)),
		),
		shape.AndOf(
			shape.Min(1, rating, shape.TrueShape()),
			shape.All(rating, shape.AndOf(
				shape.NodeTestShape(shape.IsBlank{}),
				shape.NodeTestShape(shape.IsLiteral{}),
			)),
		),
		shape.AndOf(
			shape.EqID(datagen.PropKnows),
			shape.DisjID(datagen.PropKnows),
		),
	}
	name := rdf.NewIRI(datagen.NS + "shape/underTest")
	for i, phi := range corpus {
		h, err := schema.New(schema.Definition{Name: name, Shape: phi})
		if err != nil {
			t.Fatalf("schema.New: %v", err)
		}
		flagged := false
		for _, d := range Run(h) {
			if d.Code == CodeUnsat && d.Shape == name {
				flagged = true
			}
		}
		if !flagged {
			t.Errorf("corpus[%d] not flagged SL001: %s", i, phi)
			continue
		}
		assertNoConformingNode(t, h, phi, phi.String())
	}
}
