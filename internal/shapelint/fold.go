package shapelint

import (
	"fmt"
	"sort"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// folder is the constant-folding engine behind the linter: it rewrites an
// NNF shape toward ⊤/⊥, inlining hasShape references (schemas are
// nonrecursive, so inlining terminates) and collapsing contradictory
// conjunctions. Folding is sound but incomplete: a shape folded to ⊥ is
// guaranteed unsatisfiable on every graph, while a shape that does not
// fold may still be unsatisfiable.
//
// Conflicts discovered while folding are reported through the owning
// linter, attributed to the definition currently being folded; probe runs
// fold silently for satisfiability questions asked mid-analysis.
type folder struct {
	l *linter

	// defMemo caches the folded NNF body per definition name, so shared
	// helpers fold (and report) exactly once.
	defMemo map[rdf.Term]shape.Shape
	// folding guards against reference cycles. schema.New rejects cyclic
	// schemas, so this only trips on hand-built Defs that bypassed it; a
	// cyclic reference folds to ⊤, mirroring the evaluator's default.
	folding map[rdf.Term]bool
	// current is the stack of definition names being folded; emissions
	// attribute to the top.
	current []rdf.Term
	// quiet suppresses emission during probes.
	quiet int
}

func newFolder(l *linter) *folder {
	return &folder{
		l:       l,
		defMemo: make(map[rdf.Term]shape.Shape),
		folding: make(map[rdf.Term]bool),
	}
}

// foldDef resolves and folds the named definition's shape (NNF first),
// memoized. The second result is false for undefined names.
func (f *folder) foldDef(name rdf.Term) (shape.Shape, bool) {
	if s, ok := f.defMemo[name]; ok {
		return s, true
	}
	if f.l.h == nil {
		return nil, false
	}
	def, ok := f.l.h.Def(name)
	if !ok {
		return nil, false
	}
	if f.folding[name] {
		return shape.TrueShape(), true
	}
	f.folding[name] = true
	f.current = append(f.current, name)
	folded := f.fold(shape.NNF(def))
	f.current = f.current[:len(f.current)-1]
	delete(f.folding, name)
	f.defMemo[name] = folded
	return folded, true
}

// probe folds phi without emitting diagnostics, for satisfiability
// questions asked from inside conflict checks.
func (f *folder) probe(phi shape.Shape) shape.Shape {
	f.quiet++
	defer func() { f.quiet-- }()
	return f.fold(phi)
}

// emit reports a finding against the definition currently being folded.
func (f *folder) emit(code string, sev Severity, detail, format string, args ...any) {
	if f.quiet > 0 || len(f.current) == 0 {
		return
	}
	f.l.emit(f.current[len(f.current)-1], code, sev, detail, fmt.Sprintf(format, args...))
}

// Folder exposes the linter's constant-folding engine to other analyses
// (internal/contain uses it as a satisfiability/validity probe). It folds
// quietly — no diagnostics are emitted — and memoizes per-definition
// results across calls, so repeated probes against the same schema are
// cheap.
type Folder struct {
	f *folder
}

// NewFolder builds a quiet folder over h. A nil schema is allowed: all
// hasShape references then fold to ⊤, mirroring the evaluator's default
// for undefined names.
func NewFolder(h *schema.Schema) *Folder {
	return &Folder{f: newFolder(&linter{h: h})}
}

// Fold rewrites phi toward a constant. The result is semantically
// equivalent to phi on every graph: folding to ⊥ proves phi
// unsatisfiable, folding to ⊤ proves it valid. phi need not be in NNF.
func (f *Folder) Fold(phi shape.Shape) shape.Shape {
	return f.f.probe(shape.NNF(phi))
}

// Fold is a one-shot convenience for NewFolder(h).Fold(phi).
func Fold(h *schema.Schema, phi shape.Shape) shape.Shape {
	return NewFolder(h).Fold(phi)
}

// IsTrue reports whether s is the literal ⊤ constant, as produced by
// folding.
func IsTrue(s shape.Shape) bool { return isTrue(s) }

// IsFalse reports whether s is the literal ⊥ constant, as produced by
// folding.
func IsFalse(s shape.Shape) bool { return isFalse(s) }

// TestsConflict reports whether two node tests are jointly
// unsatisfiable: no single node can pass both.
func TestsConflict(a, b shape.NodeTest) bool {
	_, bad := testsConflict(a, b)
	return bad
}

func isTrue(s shape.Shape) bool  { _, ok := s.(*shape.True); return ok }
func isFalse(s shape.Shape) bool { _, ok := s.(*shape.False); return ok }

// key renders a shape for structural comparison. Shape String renderings
// are deterministic and include every parameter, so equal keys mean
// structurally equal shapes.
func key(s shape.Shape) string { return s.String() }

func pathKey(e paths.Expr) string {
	if e == nil {
		return "id"
	}
	return e.String()
}

// fold rewrites phi (which must be in NNF) toward a constant. The result
// is semantically equivalent to phi on every graph and schema.
func (f *folder) fold(phi shape.Shape) shape.Shape {
	switch x := phi.(type) {
	case *shape.True, *shape.False:
		return phi
	case *shape.HasShape:
		if folded, ok := f.foldDef(x.Name); ok {
			return folded
		}
		// Undefined references behave as ⊤ (real-SHACL behavior); the
		// reference walk reports SL009 separately.
		return shape.TrueShape()
	case *shape.Not:
		inner := f.fold(x.X)
		switch {
		case isTrue(inner):
			return shape.FalseShape()
		case isFalse(inner):
			return shape.TrueShape()
		}
		if n, ok := inner.(*shape.Not); ok {
			return n.X
		}
		return &shape.Not{X: inner}
	case *shape.And:
		kids := make([]shape.Shape, 0, len(x.Xs))
		for _, c := range x.Xs {
			folded := f.fold(c)
			if isFalse(folded) {
				return shape.FalseShape()
			}
			kids = append(kids, folded)
		}
		flat := shape.AndOf(kids...) // flattens inlined conjunctions, drops ⊤
		and, ok := flat.(*shape.And)
		if !ok {
			return flat
		}
		if f.conjunctionConflicts(and.Xs) {
			return shape.FalseShape()
		}
		return and
	case *shape.Or:
		var kids []shape.Shape
		seen := make(map[string]bool)
		for _, c := range x.Xs {
			folded := f.fold(c)
			if isTrue(folded) {
				f.emit(CodeShadowed, Warning, key(c),
					"disjunct is trivially true, making the whole disjunction vacuous")
				return shape.TrueShape()
			}
			if isFalse(folded) {
				f.emit(CodeShadowed, Warning, key(c),
					"disjunct is unsatisfiable and can never be selected")
				continue
			}
			k := key(folded)
			if seen[k] {
				f.emit(CodeShadowed, Warning, k, "duplicate disjunct is shadowed by an earlier alternative")
				continue
			}
			seen[k] = true
			kids = append(kids, folded)
		}
		return shape.OrOf(kids...) // OrOf() of nothing is ⊥
	case *shape.MinCount:
		if x.N <= 0 {
			return shape.TrueShape() // ≥0 E.φ holds everywhere
		}
		body := f.fold(x.X)
		if isFalse(body) {
			return shape.FalseShape() // ≥n E.⊥ with n ≥ 1 is unsatisfiable
		}
		return &shape.MinCount{N: x.N, Path: x.Path, X: body}
	case *shape.MaxCount:
		body := f.fold(x.X)
		if isFalse(body) {
			return shape.TrueShape() // no successor conforms to ⊥
		}
		return &shape.MaxCount{N: x.N, Path: x.Path, X: body}
	case *shape.Forall:
		body := f.fold(x.X)
		if isTrue(body) {
			return shape.TrueShape()
		}
		// ∀E.⊥ is NOT ⊥: it holds on nodes with no E-successors.
		return &shape.Forall{Path: x.Path, X: body}
	default:
		// Atoms: test, hasValue, eq, disj, closed, pair orders, uniqueLang.
		return phi
	}
}

// conjunctionConflicts inspects the (folded, flattened) conjuncts of an
// And for contradictions, emitting a positioned diagnostic per conflict.
// It returns true when a hard conflict makes the conjunction ⊥.
func (f *folder) conjunctionConflicts(xs []shape.Shape) bool {
	hard := false
	report := func(code string, sev Severity, a, b shape.Shape, format string, args ...any) {
		f.emit(code, sev, key(a)+" ∧ "+key(b), format, args...)
		if sev == Error {
			hard = true
		}
	}

	// Sorted buckets of the atom classes the checks below pair up.
	var (
		tests    []*shape.Test
		values   []*shape.HasValue
		mins     []*shape.MinCount
		maxs     []*shape.MaxCount
		foralls  []*shape.Forall
		closeds  []*shape.Closed
		eqs      []*shape.Eq
		disjs    []*shape.Disj
		negAtoms []*shape.Not
	)
	byKey := make(map[string]bool, len(xs))
	for _, c := range xs {
		byKey[key(c)] = true
		switch a := c.(type) {
		case *shape.Test:
			tests = append(tests, a)
		case *shape.HasValue:
			values = append(values, a)
		case *shape.MinCount:
			mins = append(mins, a)
		case *shape.MaxCount:
			maxs = append(maxs, a)
		case *shape.Forall:
			foralls = append(foralls, a)
		case *shape.Closed:
			closeds = append(closeds, a)
		case *shape.Eq:
			eqs = append(eqs, a)
		case *shape.Disj:
			disjs = append(disjs, a)
		case *shape.Not:
			negAtoms = append(negAtoms, a)
		}
	}

	// φ ∧ ¬φ.
	for _, n := range negAtoms {
		if byKey[key(n.X)] {
			report(CodeContradiction, Error, n.X, n,
				"conjunction contains a shape and its negation")
		}
	}

	// Contradictory node tests.
	for i, t1 := range tests {
		for _, t2 := range tests[i+1:] {
			if why, bad := testsConflict(t1.T, t2.T); bad {
				report(CodeContradiction, Error, t1, t2,
					"contradictory node tests: %s", why)
			}
		}
	}

	// hasValue pins the focus node to a constant; everything else in the
	// conjunction must accept that constant.
	for i, v1 := range values {
		for _, v2 := range values[i+1:] {
			if v1.C != v2.C {
				report(CodeContradiction, Error, v1, v2,
					"focus node cannot equal two distinct constants")
			}
		}
	}
	for _, v := range values {
		for _, t := range tests {
			if !t.T.Holds(v.C) {
				report(CodeContradiction, Error, v, t,
					"constant %s fails node test %s", v.C, t.T)
			}
		}
		for _, n := range negAtoms {
			if t, ok := n.X.(*shape.Test); ok && t.T.Holds(v.C) {
				report(CodeContradiction, Error, v, n,
					"constant %s satisfies the negated node test %s", v.C, t.T)
			}
		}
	}

	// Cardinality contradictions on a shared path.
	for _, mn := range mins {
		for _, mx := range maxs {
			if pathKey(mn.Path) != pathKey(mx.Path) {
				continue
			}
			if mn.N > mx.N && (isTrue(mx.X) || key(mn.X) == key(mx.X)) {
				report(CodeCardinality, Error, mn, mx,
					"at least %d but at most %d values on path %s", mn.N, mx.N, pathKey(mn.Path))
			}
		}
		// ≥n E.φ with n ≥ 1 against ∀E.ψ where φ ∧ ψ is unsatisfiable:
		// the required successors would have to violate the universal.
		for _, fa := range foralls {
			if mn.N >= 1 && pathKey(mn.Path) == pathKey(fa.Path) &&
				isFalse(f.probe(shape.AndOf(mn.X, fa.X))) {
				report(CodeCardinality, Error, mn, fa,
					"required values on path %s cannot satisfy the universal constraint", pathKey(mn.Path))
			}
		}
	}

	// Closed shapes against required properties: when every accepting walk
	// of a ≥n (n ≥ 1) path must begin with a property outside the allowed
	// set, a closed focus node has no such successors.
	for _, cl := range closeds {
		allowed := make(map[string]bool, len(cl.Allowed))
		for _, p := range cl.Allowed {
			allowed[p] = true
		}
		for _, mn := range mins {
			if mn.N < 1 || mn.Path == nil || paths.CanBeEmpty(mn.Path) {
				continue
			}
			first, ok := firstForwardProps(mn.Path)
			if !ok || len(first) == 0 {
				continue
			}
			blocked := true
			var outside []string
			for p := range first {
				if allowed[p] {
					blocked = false
					break
				}
				outside = append(outside, "<"+p+">")
			}
			if blocked {
				sort.Strings(outside)
				report(CodeClosed, Error, mn, cl,
					"closed shape forbids %s, but the path requires at least %d value(s) through it",
					strings.Join(outside, ", "), mn.N)
			}
		}
	}

	// eq/disj on the same (path, property) pair. With F = id the value set
	// {focus} is never empty, so the pair is outright unsatisfiable; with a
	// real path both constraints hold only when both value sets are empty.
	for _, e := range eqs {
		for _, d := range disjs {
			if pathKey(e.Path) != pathKey(d.Path) || e.P != d.P {
				continue
			}
			if e.Path == nil {
				report(CodeContradiction, Error, e, d,
					"eq and disj on the focus node itself and property <%s> cannot both hold", e.P)
			} else {
				report(CodeContradiction, Warning, e, d,
					"eq and disj on the same path and property <%s> only hold when both value sets are empty", e.P)
			}
		}
	}

	return hard
}

// firstForwardProps computes the set of properties a non-empty accepting
// walk of e can start with, when that first step is guaranteed to be a
// forward edge out of the focus node. ok is false when the first step can
// be an inverse edge (closedness does not constrain inbound edges) or
// cannot be bounded.
func firstForwardProps(e paths.Expr) (map[string]struct{}, bool) {
	switch x := e.(type) {
	case paths.Prop:
		return map[string]struct{}{x.IRI: {}}, true
	case paths.Inverse:
		return nil, false
	case paths.Seq:
		left, ok := firstForwardProps(x.Left)
		if !ok {
			return nil, false
		}
		if paths.CanBeEmpty(x.Left) {
			right, ok := firstForwardProps(x.Right)
			if !ok {
				return nil, false
			}
			return union(left, right), true
		}
		return left, true
	case paths.Alt:
		left, ok := firstForwardProps(x.Left)
		if !ok {
			return nil, false
		}
		right, ok := firstForwardProps(x.Right)
		if !ok {
			return nil, false
		}
		return union(left, right), true
	case paths.Star:
		return firstForwardProps(x.X)
	case paths.ZeroOrOne:
		return firstForwardProps(x.X)
	}
	return nil, false
}

func union(a, b map[string]struct{}) map[string]struct{} {
	out := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		out[k] = struct{}{}
	}
	for k := range b {
		out[k] = struct{}{}
	}
	return out
}

// kind requirement bitmask for node tests: which of {IRI, blank, literal}
// a test can possibly accept.
type kindMask uint8

const (
	maskIRI kindMask = 1 << iota
	maskBlank
	maskLiteral
	maskAny = maskIRI | maskBlank | maskLiteral
)

func testKinds(t shape.NodeTest) kindMask {
	switch x := t.(type) {
	case shape.IsIRI:
		return maskIRI
	case shape.IsBlank:
		return maskBlank
	case shape.IsLiteral:
		return maskLiteral
	case shape.Datatype, shape.HasLang:
		return maskLiteral
	case shape.MinExclusive, shape.MaxExclusive, shape.MinInclusive, shape.MaxInclusive:
		// Value-range tests compare under the literal order; non-literals
		// are incomparable and always fail.
		return maskLiteral
	case shape.MinLength, shape.MaxLength, *shape.Pattern:
		// Lexical-form tests hold for IRIs and literals, never blanks.
		return maskIRI | maskLiteral
	case shape.AnyOf:
		var m kindMask
		for _, sub := range x.Tests {
			m |= testKinds(sub)
		}
		return m
	}
	return maskAny
}

// testsConflict reports whether two node tests are jointly unsatisfiable,
// with a human-readable reason.
func testsConflict(a, b shape.NodeTest) (string, bool) {
	if testKinds(a)&testKinds(b) == 0 {
		return fmt.Sprintf("%s and %s accept disjoint node kinds", a, b), true
	}
	// Order-insensitive pairwise checks.
	if why, bad := testPairConflict(a, b); bad {
		return why, bad
	}
	return testPairConflict(b, a)
}

func testPairConflict(a, b shape.NodeTest) (string, bool) {
	switch x := a.(type) {
	case shape.Datatype:
		switch y := b.(type) {
		case shape.Datatype:
			if x.IRI != y.IRI {
				return fmt.Sprintf("a literal has one datatype, not both <%s> and <%s>", x.IRI, y.IRI), true
			}
		case shape.HasLang:
			if x.IRI != rdf.RDFLangString {
				return fmt.Sprintf("language-tagged literals have datatype rdf:langString, not <%s>", x.IRI), true
			}
		}
	case shape.HasLang:
		if y, ok := b.(shape.HasLang); ok && !strings.EqualFold(x.Tag, y.Tag) {
			return fmt.Sprintf("a literal carries one language tag, not both %q and %q", x.Tag, y.Tag), true
		}
	case shape.MinLength:
		if y, ok := b.(shape.MaxLength); ok && x.N > y.N {
			return fmt.Sprintf("minLength %d exceeds maxLength %d", x.N, y.N), true
		}
	case shape.MinExclusive:
		switch y := b.(type) {
		case shape.MaxExclusive:
			if rdf.LessEq(y.Bound, x.Bound) {
				return fmt.Sprintf("empty open interval (%s, %s)", x.Bound, y.Bound), true
			}
		case shape.MaxInclusive:
			if rdf.LessEq(y.Bound, x.Bound) {
				return fmt.Sprintf("empty interval (%s, %s]", x.Bound, y.Bound), true
			}
		}
	case shape.MinInclusive:
		switch y := b.(type) {
		case shape.MaxExclusive:
			if rdf.LessEq(y.Bound, x.Bound) {
				return fmt.Sprintf("empty interval [%s, %s)", x.Bound, y.Bound), true
			}
		case shape.MaxInclusive:
			if rdf.Less(y.Bound, x.Bound) {
				return fmt.Sprintf("empty interval [%s, %s]", x.Bound, y.Bound), true
			}
		}
	}
	return "", false
}
