package sparqltrans

import (
	"shaclfrag/internal/shape"
	"shaclfrag/internal/sparql"
)

// QueryStats sizes the neighborhood query a translator would emit for a
// request shape. The strategy planner (internal/plan) uses these counts as
// the structural term of its SPARQL cost estimate: every algebra operator
// is a solution-set transformation the in-memory engine materializes, and
// every path-trace operator re-runs a product-automaton search per binding.
type QueryStats struct {
	// Ops counts algebra operators (joins, unions, filters, ...).
	Ops int
	// Patterns counts triple patterns across all BGPs.
	Patterns int
	// PathTraces counts PathTrace operators (the Q_E subqueries of
	// Lemma 5.1) — the dominant cost of generated fragment queries.
	PathTraces int
	// Preds are the distinct predicate IRIs mentioned by triple patterns;
	// the planner prices them by their cardinality in the store snapshot.
	Preds []string
}

// MeasureQuery builds Q_φ for the request and sizes it. defs may be nil.
func MeasureQuery(phi shape.Shape, defs shape.Defs) QueryStats {
	t := New(defs)
	q := t.Neighborhood(shape.NNF(phi), "v", "s", "p", "o")
	var st QueryStats
	seen := make(map[string]bool)
	countOp(q, &st, seen)
	return st
}

func countOp(op sparql.Op, st *QueryStats, seen map[string]bool) {
	if op == nil {
		return
	}
	st.Ops++
	switch x := op.(type) {
	case *sparql.BGP:
		st.Patterns += len(x.Patterns)
		for _, p := range x.Patterns {
			if p.Path != nil {
				st.PathTraces++ // a path pattern runs the same NFA search
			} else if !p.P.IsVar() && p.P.Term.IsIRI() {
				if iri := p.P.Term.Value; !seen[iri] {
					seen[iri] = true
					st.Preds = append(st.Preds, iri)
				}
			}
		}
	case *sparql.Join:
		countOp(x.L, st, seen)
		countOp(x.R, st, seen)
	case *sparql.LeftJoin:
		countOp(x.L, st, seen)
		countOp(x.R, st, seen)
	case *sparql.Union:
		countOp(x.L, st, seen)
		countOp(x.R, st, seen)
	case *sparql.Minus:
		countOp(x.L, st, seen)
		countOp(x.R, st, seen)
	case *sparql.Filter:
		countOp(x.Inner, st, seen)
		countExpr(x.Cond, st, seen)
	case *sparql.Extend:
		countOp(x.Inner, st, seen)
		countExpr(x.E, st, seen)
	case *sparql.Project:
		countOp(x.Inner, st, seen)
	case *sparql.Distinct:
		countOp(x.Inner, st, seen)
	case *sparql.GroupCount:
		countOp(x.Inner, st, seen)
	case *sparql.PathTrace:
		st.PathTraces++
	case *sparql.Table, *sparql.AllNodes:
		// leaves
	}
}

func countExpr(e sparql.Expr, st *QueryStats, seen map[string]bool) {
	switch x := e.(type) {
	case *sparql.ExistsExpr:
		countOp(x.Op, st, seen)
	case *sparql.Cmp:
		countExpr(x.L, st, seen)
		countExpr(x.R, st, seen)
	case *sparql.AndExpr:
		for _, c := range x.Xs {
			countExpr(c, st, seen)
		}
	case *sparql.OrExpr:
		for _, c := range x.Xs {
			countExpr(c, st, seen)
		}
	case *sparql.NotExpr:
		countExpr(x.X, st, seen)
	case *sparql.SameLangExpr:
		countExpr(x.L, st, seen)
		countExpr(x.R, st, seen)
	case *sparql.InExpr:
		countExpr(x.X, st, seen)
	}
}
