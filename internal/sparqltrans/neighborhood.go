package sparqltrans

import (
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/sparql"
)

// Neighborhood builds Q_φ(?v,?s,?p,?o) (Proposition 5.3): its rows are
// exactly the tuples (v, s, p, o) with (s, p, o) ∈ B(v, G, φ), for v
// ranging over N(G). The shape is normalized to NNF internally, matching
// Definition 3.2.
func (t *Translator) Neighborhood(phi shape.Shape, v, s, p, o string) sparql.Op {
	return &sparql.Distinct{
		Inner: &sparql.Project{
			Inner: t.neigh(shape.NNF(phi), v, s, p, o),
			Vars:  []string{v, s, p, o},
		},
	}
}

// FragmentQuery builds Q_S(?s,?p,?o) (Corollary 5.5): its rows are exactly
// Frag(G, S).
func (t *Translator) FragmentQuery(requests []shape.Shape, s, p, o string) sparql.Op {
	ops := make([]sparql.Op, len(requests))
	for i, phi := range requests {
		v := t.freshVar("v")
		ops[i] = &sparql.Project{
			Inner: t.neigh(shape.NNF(phi), v, s, p, o),
			Vars:  []string{s, p, o},
		}
	}
	return &sparql.Distinct{Inner: sparql.UnionOf(ops...)}
}

// tripleRow extends inner (which binds subjVar/objVar etc.) with the output
// triple variables (s, p, o) := (subj, pred, obj).
func tripleRow(inner sparql.Op, s, p, o string, subj, pred, obj sparql.Expr) sparql.Op {
	return &sparql.Extend{
		Inner: &sparql.Extend{
			Inner: &sparql.Extend{Inner: inner, Var: s, E: subj},
			Var:   p, E: pred,
		},
		Var: o, E: obj,
	}
}

// neigh implements the Appendix C constructions. phi must be in NNF.
func (t *Translator) neigh(phi shape.Shape, v, s, p, o string) sparql.Op {
	empty := &sparql.Table{}
	switch x := phi.(type) {
	case *shape.True, *shape.False, *shape.Test, *shape.HasValue,
		*shape.Closed, *shape.Disj, *shape.LessThan, *shape.LessThanEq,
		*shape.MoreThan, *shape.MoreThanEq, *shape.UniqueLang:
		return empty

	case *shape.HasShape:
		return t.neigh(shape.NNF(t.def(x.Name)), v, s, p, o)

	case *shape.And:
		ops := make([]sparql.Op, len(x.Xs))
		for i, c := range x.Xs {
			ops[i] = t.neigh(c, v, s, p, o)
		}
		return &sparql.Join{L: t.Conformance(phi, v), R: sparql.UnionOf(ops...)}

	case *shape.Or:
		// Every triple-producing construction guards itself with its own
		// conformance query, so non-conforming disjuncts contribute nothing.
		ops := make([]sparql.Op, len(x.Xs))
		for i, c := range x.Xs {
			ops[i] = t.neigh(c, v, s, p, o)
		}
		return &sparql.Join{L: t.Conformance(phi, v), R: sparql.UnionOf(ops...)}

	case *shape.MinCount:
		return t.quantified(phi, x.Path, x.X, v, s, p, o)

	case *shape.MaxCount:
		return t.quantified(phi, x.Path, shape.NNF(shape.Neg(x.X)), v, s, p, o)

	case *shape.Forall:
		h := t.freshVar("h")
		succ := &sparql.BGP{Patterns: []sparql.TriplePattern{
			{S: sparql.V(v), Path: x.Path, O: sparql.V(h)},
		}}
		trace := &sparql.Join{L: succ, R: &sparql.PathTrace{
			Path: x.Path, TVar: v, SVar: s, PVar: p, OVar: o, HVar: h,
		}}
		rec := &sparql.Join{L: succ, R: t.neigh(x.X, h, s, p, o)}
		return &sparql.Join{
			L: t.Conformance(phi, v),
			R: &sparql.Union{L: trace, R: rec},
		}

	case *shape.Eq:
		if x.Path == nil {
			inner := &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(v)},
			}}
			return &sparql.Join{
				L: t.Conformance(phi, v),
				R: tripleRow(inner, s, p, o, sparql.Vx(v), sparql.Cx(rdf.NewIRI(x.P)), sparql.Vx(v)),
			}
		}
		h := t.freshVar("h")
		union := paths.Alt{Left: x.Path, Right: paths.P(x.P)}
		return &sparql.Join{
			L: t.Conformance(phi, v),
			R: &sparql.PathTrace{Path: union, TVar: v, SVar: s, PVar: p, OVar: o, HVar: h},
		}

	case *shape.Not:
		return t.neighNegatedAtom(x.X, v, s, p, o)
	}
	panic("sparqltrans: shape not in NNF in neigh: " + phi.String())
}

// quantified builds the ≥n / ≤n / branch shared by the counting
// quantifiers: trace E-paths to witnesses satisfying body, plus the
// witnesses' own body-neighborhoods. body is ψ for ≥n and nnf(¬ψ) for ≤n.
func (t *Translator) quantified(phi shape.Shape, path paths.Expr, body shape.Shape, v, s, p, o string) sparql.Op {
	h := t.freshVar("h")
	witnesses := &sparql.Join{
		L: &sparql.BGP{Patterns: []sparql.TriplePattern{
			{S: sparql.V(v), Path: path, O: sparql.V(h)},
		}},
		R: t.Conformance(body, h),
	}
	trace := &sparql.Join{L: witnesses, R: &sparql.PathTrace{
		Path: path, TVar: v, SVar: s, PVar: p, OVar: o, HVar: h,
	}}
	rec := &sparql.Join{L: witnesses, R: t.neigh(body, h, s, p, o)}
	return &sparql.Join{
		L: t.Conformance(phi, v),
		R: &sparql.Union{L: trace, R: rec},
	}
}

// neighNegatedAtom implements the negated-atom rows of Appendix C.
func (t *Translator) neighNegatedAtom(atom shape.Shape, v, s, p, o string) sparql.Op {
	conf := t.Conformance(shape.Neg(atom), v)
	switch x := atom.(type) {
	case *shape.HasShape:
		return t.neigh(shape.NNF(shape.Neg(t.def(x.Name))), v, s, p, o)

	case *shape.True, *shape.False, *shape.Test, *shape.HasValue:
		return &sparql.Table{}

	case *shape.Closed:
		pp, oo := t.freshVar("p"), t.freshVar("o")
		allowed := make([]rdf.Term, len(x.Allowed))
		for i, a := range x.Allowed {
			allowed[i] = rdf.NewIRI(a)
		}
		inner := &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.V(pp), O: sparql.V(oo)},
			}},
			Cond: &sparql.InExpr{X: sparql.Vx(pp), Terms: allowed, Neg: true},
		}
		return &sparql.Join{
			L: conf,
			R: tripleRow(inner, s, p, o, sparql.Vx(v), sparql.Vx(pp), sparql.Vx(oo)),
		}

	case *shape.Eq:
		pTerm := rdf.NewIRI(x.P)
		if x.Path == nil {
			y := t.freshVar("y")
			inner := &sparql.Filter{
				Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
					{S: sparql.V(v), P: sparql.C(pTerm), O: sparql.V(y)},
				}},
				Cond: &sparql.Cmp{Op: sparql.CmpNeq, L: sparql.Vx(y), R: sparql.Vx(v)},
			}
			return &sparql.Join{
				L: conf,
				R: tripleRow(inner, s, p, o, sparql.Vx(v), sparql.Cx(pTerm), sparql.Vx(y)),
			}
		}
		h := t.freshVar("h")
		eNotP := &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(h)},
			}},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.C(pTerm), O: sparql.V(h)},
			}}},
		}
		branch1 := &sparql.Join{L: eNotP, R: &sparql.PathTrace{
			Path: x.Path, TVar: v, SVar: s, PVar: p, OVar: o, HVar: h,
		}}
		y := t.freshVar("y")
		pNotE := &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.C(pTerm), O: sparql.V(y)},
			}},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(y)},
			}}},
		}
		branch2 := tripleRow(pNotE, s, p, o, sparql.Vx(v), sparql.Cx(pTerm), sparql.Vx(y))
		return &sparql.Join{L: conf, R: &sparql.Union{L: branch1, R: branch2}}

	case *shape.Disj:
		pTerm := rdf.NewIRI(x.P)
		if x.Path == nil {
			inner := &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.C(pTerm), O: sparql.V(v)},
			}}
			return &sparql.Join{
				L: conf,
				R: tripleRow(inner, s, p, o, sparql.Vx(v), sparql.Cx(pTerm), sparql.Vx(v)),
			}
		}
		h := t.freshVar("h")
		common := &sparql.BGP{Patterns: []sparql.TriplePattern{
			{S: sparql.V(v), Path: x.Path, O: sparql.V(h)},
			{S: sparql.V(v), P: sparql.C(pTerm), O: sparql.V(h)},
		}}
		branch1 := &sparql.Join{L: common, R: &sparql.PathTrace{
			Path: x.Path, TVar: v, SVar: s, PVar: p, OVar: o, HVar: h,
		}}
		branch2 := tripleRow(common, s, p, o, sparql.Vx(v), sparql.Cx(pTerm), sparql.Vx(h))
		return &sparql.Join{L: conf, R: &sparql.Union{L: branch1, R: branch2}}

	case *shape.LessThan:
		return t.negOrder(conf, x.Path, x.P, sparql.CmpNotLess, false, v, s, p, o)

	case *shape.LessThanEq:
		return t.negOrder(conf, x.Path, x.P, sparql.CmpNotLessEq, false, v, s, p, o)

	case *shape.MoreThan:
		return t.negOrder(conf, x.Path, x.P, sparql.CmpNotLess, true, v, s, p, o)

	case *shape.MoreThanEq:
		return t.negOrder(conf, x.Path, x.P, sparql.CmpNotLessEq, true, v, s, p, o)

	case *shape.UniqueLang:
		a, b := t.freshVar("h"), t.freshVar("y")
		clash := &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(a)},
				{S: sparql.V(v), Path: x.Path, O: sparql.V(b)},
			}},
			Cond: sparql.AndOf(
				&sparql.Cmp{Op: sparql.CmpNeq, L: sparql.Vx(a), R: sparql.Vx(b)},
				&sparql.SameLangExpr{L: sparql.Vx(a), R: sparql.Vx(b)},
			),
		}
		return &sparql.Join{
			L: conf,
			R: &sparql.Join{L: clash, R: &sparql.PathTrace{
				Path: x.Path, TVar: v, SVar: s, PVar: p, OVar: o, HVar: a,
			}},
		}
	}
	panic("sparqltrans: unexpected negated atom " + atom.String())
}

// negOrder builds the ¬lessThan / ¬lessThanEq (and, with swap, ¬moreThan /
// ¬moreThanEq) rows: witness pairs (x, y) violating the order contribute
// the E-trace to x and the (v, p, y) edge.
func (t *Translator) negOrder(conf sparql.Op, path paths.Expr, p string, violation sparql.CmpOp, swap bool, v, s, pp, o string) sparql.Op {
	a, b := t.freshVar("h"), t.freshVar("y")
	pTerm := rdf.NewIRI(p)
	l, r := sparql.Vx(a), sparql.Vx(b)
	if swap {
		l, r = r, l
	}
	pairs := &sparql.Filter{
		Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
			{S: sparql.V(v), Path: path, O: sparql.V(a)},
			{S: sparql.V(v), P: sparql.C(pTerm), O: sparql.V(b)},
		}},
		Cond: &sparql.Cmp{Op: violation, L: l, R: r},
	}
	branch1 := &sparql.Join{L: pairs, R: &sparql.PathTrace{
		Path: path, TVar: v, SVar: s, PVar: pp, OVar: o, HVar: a,
	}}
	branch2 := tripleRow(pairs, s, pp, o, sparql.Vx(v), sparql.Cx(pTerm), sparql.Vx(b))
	return &sparql.Join{L: conf, R: &sparql.Union{L: branch1, R: branch2}}
}
