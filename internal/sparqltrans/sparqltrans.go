// Package sparqltrans translates shapes into SPARQL algebra, implementing
// Section 5.1 of the paper:
//
//   - Conformance queries CQ_φ(?v) return the nodes of N(G) that conform
//     to φ (the known result the paper builds on);
//   - Neighborhood queries Q_φ(?v,?s,?p,?o) return exactly the tuples with
//     (s,p,o) ∈ B(v,G,φ) (Proposition 5.3);
//   - Fragment queries Q_S(?s,?p,?o) return Frag(G,S) (Corollary 5.5).
//
// The constructions follow Appendix C, with the path-trace subqueries Q_E of
// Lemma 5.1 realized by the sparql.PathTrace operator. Rendering the
// resulting algebra with sparql.Render produces concrete SPARQL text whose
// shape mirrors the paper's generated queries.
package sparqltrans

import (
	"fmt"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/sparql"
)

// Translator builds SPARQL algebra from shapes in the context of a schema.
type Translator struct {
	defs  shape.Defs
	fresh int
}

// New returns a translator; defs may be nil for schema-free shapes.
func New(defs shape.Defs) *Translator {
	return &Translator{defs: defs}
}

func (t *Translator) def(name rdf.Term) shape.Shape {
	if t.defs != nil {
		if s, ok := t.defs.Def(name); ok {
			return s
		}
	}
	return shape.TrueShape()
}

func (t *Translator) freshVar(prefix string) string {
	t.fresh++
	return fmt.Sprintf("%s%d", prefix, t.fresh)
}

// Conformance builds CQ_φ(?v): the query returning every node of N(G)
// conforming to φ. Unlike neighborhoods, CQ accepts arbitrary shapes (not
// only NNF).
func (t *Translator) Conformance(phi shape.Shape, v string) sparql.Op {
	switch x := phi.(type) {
	case *shape.True:
		return &sparql.AllNodes{Var: v}
	case *shape.False:
		return &sparql.Table{}
	case *shape.HasValue:
		return &sparql.Join{
			L: &sparql.Table{Rows: []sparql.Binding{{v: x.C}}},
			R: &sparql.AllNodes{Var: v},
		}
	case *shape.Test:
		return &sparql.Filter{
			Inner: &sparql.AllNodes{Var: v},
			Cond:  &sparql.NodeTestExpr{Name: v, Test: x.T},
		}
	case *shape.HasShape:
		return t.Conformance(t.def(x.Name), v)
	case *shape.Not:
		return &sparql.Minus{L: &sparql.AllNodes{Var: v}, R: t.Conformance(x.X, v)}
	case *shape.And:
		ops := make([]sparql.Op, len(x.Xs))
		for i, c := range x.Xs {
			ops[i] = t.Conformance(c, v)
		}
		return sparql.JoinOf(ops...)
	case *shape.Or:
		ops := make([]sparql.Op, len(x.Xs))
		for i, c := range x.Xs {
			ops[i] = t.Conformance(c, v)
		}
		return &sparql.Distinct{Inner: sparql.UnionOf(ops...)}
	case *shape.MinCount:
		if x.N == 0 {
			return &sparql.AllNodes{Var: v}
		}
		h := t.freshVar("x")
		c := t.freshVar("cnt")
		inner := &sparql.Join{
			L: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(h)},
			}},
			R: t.Conformance(x.X, h),
		}
		return &sparql.Project{
			Inner: &sparql.Filter{
				Inner: &sparql.GroupCount{Inner: inner, By: []string{v}, CountVar: c},
				Cond: &sparql.Cmp{Op: sparql.CmpNotLess,
					L: sparql.Vx(c), R: sparql.Cx(rdf.NewInteger(int64(x.N)))},
			},
			Vars: []string{v},
		}
	case *shape.MaxCount:
		h := t.freshVar("x")
		c := t.freshVar("cnt")
		inner := &sparql.Join{
			L: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(h)},
			}},
			R: t.Conformance(x.X, h),
		}
		tooMany := &sparql.Project{
			Inner: &sparql.Filter{
				Inner: &sparql.GroupCount{Inner: inner, By: []string{v}, CountVar: c},
				Cond: &sparql.Cmp{Op: sparql.CmpNotLessEq,
					L: sparql.Vx(c), R: sparql.Cx(rdf.NewInteger(int64(x.N)))},
			},
			Vars: []string{v},
		}
		return &sparql.Minus{L: &sparql.AllNodes{Var: v}, R: tooMany}
	case *shape.Forall:
		h := t.freshVar("x")
		violating := &sparql.Project{
			Inner: &sparql.Join{
				L: &sparql.BGP{Patterns: []sparql.TriplePattern{
					{S: sparql.V(v), Path: x.Path, O: sparql.V(h)},
				}},
				R: &sparql.Minus{L: &sparql.AllNodes{Var: h}, R: t.Conformance(x.X, h)},
			},
			Vars: []string{v},
		}
		return &sparql.Minus{L: &sparql.AllNodes{Var: v}, R: violating}
	case *shape.Eq:
		if x.Path == nil {
			y := t.freshVar("x")
			return &sparql.Filter{
				Inner: &sparql.AllNodes{Var: v},
				Cond: sparql.AndOf(
					&sparql.ExistsExpr{Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
						{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(v)},
					}}},
					&sparql.ExistsExpr{Neg: true, Op: &sparql.Filter{
						Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
							{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(y)},
						}},
						Cond: &sparql.Cmp{Op: sparql.CmpNeq, L: sparql.Vx(y), R: sparql.Vx(v)},
					}},
				),
			}
		}
		y := t.freshVar("x")
		onlyE := &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(y)},
			}},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(y)},
			}}},
		}
		onlyP := &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(y)},
			}},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(y)},
			}}},
		}
		return &sparql.Filter{
			Inner: &sparql.AllNodes{Var: v},
			Cond: sparql.AndOf(
				&sparql.ExistsExpr{Neg: true, Op: onlyE},
				&sparql.ExistsExpr{Neg: true, Op: onlyP},
			),
		}
	case *shape.Disj:
		if x.Path == nil {
			return &sparql.Filter{
				Inner: &sparql.AllNodes{Var: v},
				Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
					{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(v)},
				}}},
			}
		}
		y := t.freshVar("x")
		return &sparql.Filter{
			Inner: &sparql.AllNodes{Var: v},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: x.Path, O: sparql.V(y)},
				{S: sparql.V(v), P: sparql.C(rdf.NewIRI(x.P)), O: sparql.V(y)},
			}}},
		}
	case *shape.Closed:
		pp, oo := t.freshVar("p"), t.freshVar("o")
		allowed := make([]rdf.Term, len(x.Allowed))
		for i, a := range x.Allowed {
			allowed[i] = rdf.NewIRI(a)
		}
		return &sparql.Filter{
			Inner: &sparql.AllNodes{Var: v},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.Filter{
				Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
					{S: sparql.V(v), P: sparql.V(pp), O: sparql.V(oo)},
				}},
				Cond: &sparql.InExpr{X: sparql.Vx(pp), Terms: allowed, Neg: true},
			}},
		}
	case *shape.LessThan:
		return t.orderConformance(v, x.Path, x.P, sparql.CmpNotLess, false)
	case *shape.LessThanEq:
		return t.orderConformance(v, x.Path, x.P, sparql.CmpNotLessEq, false)
	case *shape.MoreThan:
		return t.orderConformance(v, x.Path, x.P, sparql.CmpNotLess, true)
	case *shape.MoreThanEq:
		return t.orderConformance(v, x.Path, x.P, sparql.CmpNotLessEq, true)
	case *shape.UniqueLang:
		a, b := t.freshVar("x"), t.freshVar("x")
		return &sparql.Filter{
			Inner: &sparql.AllNodes{Var: v},
			Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.Filter{
				Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
					{S: sparql.V(v), Path: x.Path, O: sparql.V(a)},
					{S: sparql.V(v), Path: x.Path, O: sparql.V(b)},
				}},
				Cond: sparql.AndOf(
					&sparql.Cmp{Op: sparql.CmpNeq, L: sparql.Vx(a), R: sparql.Vx(b)},
					&sparql.SameLangExpr{L: sparql.Vx(a), R: sparql.Vx(b)},
				),
			}},
		}
	}
	panic("sparqltrans: unknown shape in Conformance")
}

// orderConformance builds CQ for the four order-pair constraints: no
// witness pair may violate the order. swap compares the p-value against the
// path value instead (the moreThan family of Remark 2.3).
func (t *Translator) orderConformance(v string, path paths.Expr, p string, violation sparql.CmpOp, swap bool) sparql.Op {
	a, b := t.freshVar("x"), t.freshVar("y")
	l, r := sparql.Vx(a), sparql.Vx(b)
	if swap {
		l, r = r, l
	}
	return &sparql.Filter{
		Inner: &sparql.AllNodes{Var: v},
		Cond: &sparql.ExistsExpr{Neg: true, Op: &sparql.Filter{
			Inner: &sparql.BGP{Patterns: []sparql.TriplePattern{
				{S: sparql.V(v), Path: path, O: sparql.V(a)},
				{S: sparql.V(v), P: sparql.C(rdf.NewIRI(p)), O: sparql.V(b)},
			}},
			Cond: &sparql.Cmp{Op: violation, L: l, R: r},
		}},
	}
}
