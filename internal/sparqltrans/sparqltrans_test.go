package sparqltrans_test

import (
	"math/rand"
	"strings"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
	"shaclfrag/internal/sparql"
	"shaclfrag/internal/sparqltrans"
	"shaclfrag/internal/turtle"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// conformingByQuery runs CQ_φ and returns the sorted node terms.
func conformingByQuery(tr *sparqltrans.Translator, phi shape.Shape, g *rdfgraph.Graph) map[rdf.Term]bool {
	rows := sparql.Select(tr.Conformance(phi, "v"), g, "v")
	out := make(map[rdf.Term]bool, len(rows))
	for _, r := range rows {
		out[r["v"]] = true
	}
	return out
}

// conformingDirect evaluates conformance directly over N(G).
func conformingDirect(phi shape.Shape, g *rdfgraph.Graph) map[rdf.Term]bool {
	ev := shape.NewEvaluator(g, nil)
	out := make(map[rdf.Term]bool)
	for _, n := range g.NodeIDs() {
		if ev.Conforms(n, phi) {
			out[g.Term(n)] = true
		}
	}
	return out
}

func TestConformanceQuerySimple(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:z ex:q ex:b .`)
	tr := sparqltrans.New(nil)
	phi := shape.Min(1, paths.P(base+"p"), shape.TrueShape())
	got := conformingByQuery(tr, phi, g)
	if len(got) != 1 || !got[iri("a")] {
		t.Errorf("CQ rows = %v, want {a}", got)
	}
}

// Property: CQ_φ agrees with direct conformance evaluation over N(G), for
// random shapes (including non-NNF negations) and graphs.
func TestConformanceEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		phi := shapetest.RandomShape(rng, 3)
		tr := sparqltrans.New(nil)
		got := conformingByQuery(tr, phi, g)
		want := conformingDirect(phi, g)
		if len(got) != len(want) {
			t.Fatalf("trial %d: CQ size %d vs direct %d for %s\ngraph:\n%s\ngot: %v\nwant: %v",
				trial, len(got), len(want), phi, turtle.FormatGraph(g), got, want)
		}
		for term := range want {
			if !got[term] {
				t.Fatalf("trial %d: CQ missing %v for %s", trial, term, phi)
			}
		}
	}
}

// neighborhoodByQuery runs Q_φ and groups triples per focus node.
func neighborhoodByQuery(tr *sparqltrans.Translator, phi shape.Shape, g *rdfgraph.Graph) map[rdf.Term]map[rdf.Triple]bool {
	op := tr.Neighborhood(phi, "v", "s", "p", "o")
	out := make(map[rdf.Term]map[rdf.Triple]bool)
	for _, r := range sparql.Eval(op, g) {
		v, okV := r["v"]
		s, okS := r["s"]
		p, okP := r["p"]
		o, okO := r["o"]
		if !okV || !okS || !okP || !okO {
			continue
		}
		if out[v] == nil {
			out[v] = make(map[rdf.Triple]bool)
		}
		out[v][rdf.T(s, p, o)] = true
	}
	return out
}

// Property (Proposition 5.3): Q_φ rows coincide with B(v, G, φ) for every
// node v of N(G).
func TestNeighborhoodQueryEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		g := shapetest.RandomGraph(rng, 10)
		phi := shapetest.RandomShape(rng, 3)
		tr := sparqltrans.New(nil)
		got := neighborhoodByQuery(tr, phi, g)

		x := core.NewExtractor(g, nil)
		for _, n := range g.NodeIDs() {
			term := g.Term(n)
			want := x.Neighborhood(term, phi)
			gotSet := got[term]
			if len(gotSet) != len(want) {
				t.Fatalf("trial %d: node %v shape %s:\nquery: %v\ndirect: %v\ngraph:\n%s",
					trial, term, phi, gotSet, want, turtle.FormatGraph(g))
			}
			for _, tr := range want {
				if !gotSet[tr] {
					t.Fatalf("trial %d: node %v shape %s missing %v", trial, term, phi, tr)
				}
			}
		}
	}
}

// Property (Corollary 5.5): the fragment query computes Frag(G, S).
func TestFragmentQueryEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		g := shapetest.RandomGraph(rng, 12)
		requests := []shape.Shape{
			shapetest.RandomShape(rng, 2),
			shapetest.RandomShape(rng, 3),
		}
		tr := sparqltrans.New(nil)
		op := tr.FragmentQuery(requests, "s", "p", "o")
		got := make(map[rdf.Triple]bool)
		for _, r := range sparql.Eval(op, g) {
			s, okS := r["s"]
			p, okP := r["p"]
			o, okO := r["o"]
			if okS && okP && okO {
				got[rdf.T(s, p, o)] = true
			}
		}
		want := core.Fragment(g, nil, requests...)
		if len(got) != len(want) {
			t.Fatalf("trial %d: fragment sizes differ: query %d vs direct %d\nshapes: %s | %s\ngraph:\n%s",
				trial, len(got), len(want), requests[0], requests[1], turtle.FormatGraph(g))
		}
		for _, tr := range want {
			if !got[tr] {
				t.Fatalf("trial %d: fragment query missing %v", trial, tr)
			}
		}
	}
}

func TestNeighborhoodQueryWithSchema(t *testing.T) {
	g := mustGraph(t, `ex:a ex:p ex:b . ex:b ex:q ex:c .`)
	defs := defsMap{
		iri("S"): shape.Min(1, paths.P(base+"q"), shape.TrueShape()),
	}
	phi := shape.Min(1, paths.P(base+"p"), shape.Ref(iri("S")))
	tr := sparqltrans.New(defs)
	got := neighborhoodByQuery(tr, phi, g)
	x := core.NewExtractor(g, defs)
	want := x.Neighborhood(iri("a"), phi)
	if len(got[iri("a")]) != len(want) {
		t.Fatalf("schema-aware neighborhood: query %v direct %v", got[iri("a")], want)
	}
}

type defsMap map[rdf.Term]shape.Shape

func (d defsMap) Def(name rdf.Term) (shape.Shape, bool) {
	s, ok := d[name]
	return s, ok
}

func TestExample56PingPong(t *testing.T) {
	// Example 5.6: ∀p.≥1 q.hasValue(c) — "all my friends like ping-pong".
	g := mustGraph(t, `
ex:v ex:friend ex:x , ex:y .
ex:x ex:likes ex:pingpong .
ex:y ex:likes ex:pingpong .
ex:loner ex:likes ex:chess .
`)
	phi := shape.All(paths.P(base+"friend"),
		shape.Min(1, paths.P(base+"likes"), shape.Value(iri("pingpong"))))
	tr := sparqltrans.New(nil)
	op := tr.FragmentQuery([]shape.Shape{phi}, "s", "p", "o")
	rows := sparql.Select(op, g, "s", "p", "o")
	want := core.Fragment(g, nil, phi)
	if len(rows) != len(want) {
		t.Fatalf("rows = %v\nwant %v", rows, want)
	}
	// The fragment contains v's friend edges and their likes edges, but not
	// the loner's.
	for _, r := range rows {
		if r["s"] == iri("loner") {
			t.Errorf("loner must not appear: %v", r)
		}
	}
}

func TestRenderedQueryShape(t *testing.T) {
	phi := shape.Min(1, paths.P(base+"author"),
		shape.Min(1, paths.P(rdf.RDFType), shape.Value(iri("Student"))))
	tr := sparqltrans.New(nil)
	op := tr.Neighborhood(phi, "v", "s", "p", "o")
	text := sparql.Render(op, "v", "s", "p", "o")
	for _, want := range []string{"SELECT ?v ?s ?p ?o", "GROUP BY", "UNION", "author"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered query missing %q\n%s", want, text)
		}
	}
	// The paper reports generated queries running to hundreds of lines;
	// even this two-level shape should be substantial.
	if lines := strings.Count(text, "\n"); lines < 20 {
		t.Errorf("rendered query suspiciously short: %d lines", lines)
	}
}
