package contain_test

import (
	"reflect"
	"testing"

	"shaclfrag/internal/contain"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapelint"
)

func TestLintRedundantDefinition(t *testing.T) {
	top := shape.TrueShape()
	h := schema.MustNew(
		schema.Definition{Name: iri("General"), Shape: shape.Min(1, p("p"), top), Target: shape.Value(iri("a"))},
		schema.Definition{Name: iri("Specific"), Shape: shape.Min(2, p("p"), top), Target: shape.Value(iri("a"))},
	)
	diags := contain.Lint(h)
	if len(diags) != 1 || diags[0].Code != shapelint.CodeRedundant {
		t.Fatalf("diags = %v, want one SL010", diags)
	}
	if diags[0].Shape != iri("General") {
		t.Errorf("SL010 should flag the weaker definition, got %s", diags[0].Shape)
	}
}

func TestLintMutualSubsumptionKeepsEarlierDeclaration(t *testing.T) {
	a := shape.Min(1, p("p"), shape.TrueShape())
	b := shape.All(p("q"), shape.NodeTestShape(shape.IsLiteral{}))
	h := schema.MustNew(
		schema.Definition{Name: iri("First"), Shape: shape.AndOf(a, b), Target: shape.Value(iri("a"))},
		schema.Definition{Name: iri("Second"), Shape: shape.AndOf(b, a), Target: shape.Value(iri("a"))},
	)
	diags := contain.Lint(h)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly one finding", diags)
	}
	if diags[0].Shape != iri("Second") {
		t.Errorf("mutual subsumption should flag the later declaration, got %s", diags[0].Shape)
	}
}

func TestLintImpliedConjunct(t *testing.T) {
	top := shape.TrueShape()
	h := schema.MustNew(schema.Definition{
		Name:   iri("S"),
		Shape:  shape.AndOf(shape.Min(2, p("p"), top), shape.Min(1, p("p"), top)),
		Target: shape.Value(iri("a")),
	})
	diags := contain.Lint(h)
	if len(diags) != 1 || diags[0].Code != shapelint.CodeImpliedConjunct {
		t.Fatalf("diags = %v, want one SL011", diags)
	}
}

// TestDiagnosticOrderIndependentOfDeclaration is the ordering regression
// test: the merged diagnostic stream is sorted by (shape, code, position),
// so reordering the schema's definitions must not reorder the findings.
func TestDiagnosticOrderIndependentOfDeclaration(t *testing.T) {
	top := shape.TrueShape()
	// Zulu sorts after Alpha by IRI but is declared first; both carry an
	// SL011 (implied conjunct), and Alpha additionally an SL002-style
	// clean shape is avoided so only contain findings appear.
	zulu := schema.Definition{
		Name:   iri("Zulu"),
		Shape:  shape.AndOf(shape.Min(3, p("p"), top), shape.Min(1, p("p"), top)),
		Target: shape.Value(iri("z")),
	}
	alpha := schema.Definition{
		Name:   iri("Alpha"),
		Shape:  shape.AndOf(shape.Min(2, p("q"), top), shape.Min(1, p("q"), top)),
		Target: shape.Value(iri("a")),
	}
	d1 := contain.LintMerged(schema.MustNew(zulu, alpha))
	d2 := contain.LintMerged(schema.MustNew(alpha, zulu))
	if len(d1) == 0 {
		t.Fatal("expected findings from both definitions")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("declaration order changed the diagnostic stream:\n%v\nvs\n%v", d1, d2)
	}
	for i := 1; i < len(d1); i++ {
		if d1[i-1].Shape.String() > d1[i].Shape.String() {
			t.Fatalf("diagnostics not sorted by shape: %v before %v", d1[i-1], d1[i])
		}
	}
	if d1[0].Shape != iri("Alpha") {
		t.Errorf("Alpha's findings should sort first, got %s", d1[0].Shape)
	}
}
