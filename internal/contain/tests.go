package contain

import (
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/shape"
)

// testImplies is sound node-test implication: true only when every term
// passing a also passes b. It covers the implication lattice of the
// concrete tests in internal/shape: datatype/language tests are literal
// tests, value-range bounds tighten under the rdf total order (rdf.Less
// is transitive, property-tested in internal/rdf), and length facets
// order by their bound. AnyOf distributes on both sides.
func testImplies(a, b shape.NodeTest) bool {
	if a.String() == b.String() {
		return true
	}
	if x, ok := a.(shape.AnyOf); ok {
		for _, t := range x.Tests {
			if !testImplies(t, b) {
				return false
			}
		}
		return true
	}
	if y, ok := b.(shape.AnyOf); ok {
		for _, t := range y.Tests {
			if testImplies(a, t) {
				return true
			}
		}
		return false
	}
	if _, ok := b.(shape.IsLiteral); ok && literalOnly(a) {
		return true
	}
	switch x := a.(type) {
	case shape.MinLength:
		if y, ok := b.(shape.MinLength); ok {
			return x.N >= y.N
		}
	case shape.MaxLength:
		if y, ok := b.(shape.MaxLength); ok {
			return x.N <= y.N
		}
	case shape.MinExclusive:
		switch y := b.(type) {
		case shape.MinExclusive:
			return rdf.LessEq(y.Bound, x.Bound)
		case shape.MinInclusive:
			return rdf.LessEq(y.Bound, x.Bound)
		}
	case shape.MinInclusive:
		switch y := b.(type) {
		case shape.MinInclusive:
			return rdf.LessEq(y.Bound, x.Bound)
		case shape.MinExclusive:
			return rdf.Less(y.Bound, x.Bound)
		}
	case shape.MaxExclusive:
		switch y := b.(type) {
		case shape.MaxExclusive:
			return rdf.LessEq(x.Bound, y.Bound)
		case shape.MaxInclusive:
			return rdf.LessEq(x.Bound, y.Bound)
		}
	case shape.MaxInclusive:
		switch y := b.(type) {
		case shape.MaxInclusive:
			return rdf.LessEq(x.Bound, y.Bound)
		case shape.MaxExclusive:
			return rdf.Less(x.Bound, y.Bound)
		}
	}
	return false
}

// literalOnly reports whether the test can only accept literals.
func literalOnly(t shape.NodeTest) bool {
	switch x := t.(type) {
	case shape.IsLiteral, shape.Datatype, shape.HasLang,
		shape.MinExclusive, shape.MaxExclusive, shape.MinInclusive, shape.MaxInclusive:
		return true
	case shape.AnyOf:
		for _, sub := range x.Tests {
			if !literalOnly(sub) {
				return false
			}
		}
		return len(x.Tests) > 0
	}
	return false
}
