package contain

import (
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// Classes is the cache-sharing equivalence-class table over a slice of
// shapes (fragserver computes one per epoch over its per-definition
// request shapes, alongside the planner). Shapes fall into one class
// when their CanonKeys match — the neighborhood congruence — so serving
// one class member's cached entries for another is byte-exact.
type Classes struct {
	// Rep[i] is the index of shape i's representative: the first shape
	// with the same canonical key. Rep[i] == i for representatives.
	Rep []int
	// NumClasses counts distinct classes.
	NumClasses int
	// Shared counts shapes that alias another shape's class (Rep[i] != i)
	// — each one is a definition whose cache entries are served from its
	// representative.
	Shared int
	// UnknownPairs counts unordered pairs of distinct-class
	// representatives for which the full containment checker could not
	// prove equivalence in at least one direction: shapes that may be
	// semantically equivalent but are not congruent, and therefore not
	// shared. Exported as fragserver_containment_unknown_total.
	UnknownPairs int
}

// ComputeClasses groups shapes by canonical key and measures, via the
// containment checker, how many of the remaining distinct classes are
// possibly-equivalent-but-unproven.
func ComputeClasses(h *schema.Schema, shapes []shape.Shape) Classes {
	cl := Classes{Rep: make([]int, len(shapes))}
	first := make(map[string]int, len(shapes))
	var reps []int
	for i, s := range shapes {
		k := CanonKey(h, s)
		if j, ok := first[k]; ok {
			cl.Rep[i] = j
			cl.Shared++
			continue
		}
		first[k] = i
		cl.Rep[i] = i
		reps = append(reps, i)
	}
	cl.NumClasses = len(reps)

	c := New(h, h)
	for a := 0; a < len(reps); a++ {
		for b := a + 1; b < len(reps); b++ {
			if c.Equivalent(shapes[reps[a]], shapes[reps[b]]) != Contained {
				cl.UnknownPairs++
			}
		}
	}
	return cl
}

// Aliases materializes the table as a shape-to-representative map,
// keyed and valued by the identical shape pointers passed to
// ComputeClasses, ready for core.NeighborhoodCache.SetAliases.
// Representatives themselves are omitted.
func (cl Classes) Aliases(shapes []shape.Shape) map[shape.Shape]shape.Shape {
	if cl.Shared == 0 {
		return nil
	}
	out := make(map[shape.Shape]shape.Shape, cl.Shared)
	for i, r := range cl.Rep {
		if r != i {
			out[shapes[i]] = shapes[r]
		}
	}
	return out
}
