package contain

import (
	"math/rand"
	"sort"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

// RefuteConfig bounds the random-graph model search.
type RefuteConfig struct {
	// Graphs is the number of random graphs to evaluate (default 40).
	Graphs int
	// Edges is the approximate edge count per graph (default 24).
	Edges int
	// Seed is the base RNG seed; graph i uses Seed+i, so witnesses are
	// reproducible (default 1).
	Seed int64
}

func (cfg RefuteConfig) withDefaults() RefuteConfig {
	if cfg.Graphs <= 0 {
		cfg.Graphs = 40
	}
	if cfg.Edges <= 0 {
		cfg.Edges = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Witness is a concrete refutation of φ1 ⊑ φ2: on Graph, Node conforms
// to φ1 (left schema) but not φ2 (right schema).
type Witness struct {
	// Node is the non-conforming focus node.
	Node rdf.Term
	// Graph is the witness graph's triples.
	Graph []rdf.Triple
	// Seed is the RNG seed that produced the graph.
	Seed int64
}

// Result pairs a verdict with the witness behind a NotContained answer.
type Result struct {
	Verdict Verdict
	Witness *Witness
}

// Check decides φ1 ⊑ φ2 end to end: the structural checker first, and on
// Unknown a randomized model search that can upgrade the answer to
// NotContained with a concrete witness. Unknown survives only when both
// halves give up, and is always safe to treat as "not contained".
func (c *Checker) Check(phi1, phi2 shape.Shape, cfg RefuteConfig) Result {
	if c.Contains(phi1, phi2) == Contained {
		return Result{Verdict: Contained}
	}
	if w, ok := c.Refute(phi1, phi2, cfg); ok {
		return Result{Verdict: NotContained, Witness: &w}
	}
	return Result{Verdict: Unknown}
}

// Refute searches random graphs for a node conforming to φ1 but not φ2.
// Graphs are generated over the vocabulary the two shapes (and their
// transitively referenced definitions) actually mention — properties,
// hasValue constants, closed property sets, test bounds — mixed with the
// shapetest universe, so targets like ≥1 rdf:type/subClassOf*.hasValue(c)
// are actually reachable. The search is sound by construction: a witness
// is only ever reported after both evaluators disagree on a concrete
// graph.
func (c *Checker) Refute(phi1, phi2 shape.Shape, cfg RefuteConfig) (Witness, bool) {
	cfg = cfg.withDefaults()
	voc := newVocabulary()
	voc.harvest(phi1, c.left)
	voc.harvest(phi2, c.right)
	for i := 0; i < cfg.Graphs; i++ {
		seed := cfg.Seed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		triples := voc.randomTriples(rng, cfg.Edges)
		g := rdfgraph.New()
		for _, t := range triples {
			g.Add(t)
		}
		evL := shape.NewEvaluator(g, defsOrNil(c.left))
		evR := shape.NewEvaluator(g, defsOrNil(c.right))
		for _, v := range voc.candidates(triples) {
			if evL.ConformsTerm(v, phi1) && !evR.ConformsTerm(v, phi2) {
				return Witness{Node: v, Graph: triples, Seed: seed}, true
			}
		}
	}
	return Witness{}, false
}

func defsOrNil(h *schema.Schema) shape.Defs {
	if h == nil {
		return nil
	}
	return h
}

// vocabulary is the term universe harvested from the shapes under test.
type vocabulary struct {
	props []string
	terms []rdf.Term

	propSeen map[string]bool
	termSeen map[string]bool
}

func newVocabulary() *vocabulary {
	v := &vocabulary{propSeen: make(map[string]bool), termSeen: make(map[string]bool)}
	// Always include the shapetest universe so shapes with no vocabulary
	// of their own (⊤-heavy formulas) still see varied graphs.
	for _, p := range []string{"p", "q", "r"} {
		v.addProp(shapetest.Base + p)
	}
	for _, n := range []string{"a", "b", "c"} {
		v.addTerm(shapetest.IRI(n))
	}
	v.addTerm(rdf.NewString("w"))
	v.addTerm(rdf.NewLangString("w", "en"))
	v.addTerm(rdf.NewInteger(0))
	v.addTerm(rdf.NewInteger(3))
	return v
}

func (v *vocabulary) addProp(iri string) {
	if !v.propSeen[iri] {
		v.propSeen[iri] = true
		v.props = append(v.props, iri)
	}
}

func (v *vocabulary) addTerm(t rdf.Term) {
	k := t.String()
	if !v.termSeen[k] {
		v.termSeen[k] = true
		v.terms = append(v.terms, t)
	}
}

// harvest walks phi and every definition reachable from it in h,
// collecting properties and constants.
func (v *vocabulary) harvest(phi shape.Shape, h *schema.Schema) {
	seen := make(map[rdf.Term]bool)
	var walkDef func(s shape.Shape)
	walkDef = func(s shape.Shape) {
		if s == nil {
			return
		}
		// MentionedProperties returns a map; sort before adding so the
		// vocabulary order — and with it every witness — is reproducible.
		var props []string
		for p := range shape.MentionedProperties(s) {
			props = append(props, p)
		}
		sort.Strings(props)
		for _, p := range props {
			v.addProp(p)
		}
		shape.Walk(s, func(n shape.Shape) {
			switch x := n.(type) {
			case *shape.HasValue:
				v.addTerm(x.C)
			case *shape.Test:
				v.harvestTest(x.T)
			case *shape.Closed:
				for _, p := range x.Allowed {
					v.addProp(p)
				}
			}
		})
		if h == nil {
			return
		}
		for _, ref := range shape.ShapeRefs(s) {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			if body, ok := h.Def(ref); ok {
				walkDef(body)
			}
		}
	}
	walkDef(phi)
}

// harvestTest adds boundary values around a test so the search probes
// both sides of each bound.
func (v *vocabulary) harvestTest(t shape.NodeTest) {
	switch x := t.(type) {
	case shape.Datatype:
		v.addTerm(rdf.NewTypedLiteral("0", x.IRI))
		v.addTerm(rdf.NewTypedLiteral("v", x.IRI))
	case shape.HasLang:
		v.addTerm(rdf.NewLangString("v", x.Tag))
	case shape.MinExclusive:
		v.addTerm(x.Bound)
	case shape.MaxExclusive:
		v.addTerm(x.Bound)
	case shape.MinInclusive:
		v.addTerm(x.Bound)
	case shape.MaxInclusive:
		v.addTerm(x.Bound)
	case shape.AnyOf:
		for _, sub := range x.Tests {
			v.harvestTest(sub)
		}
	}
}

// randomTriples draws a graph over the vocabulary. Subjects are IRIs or
// blanks; objects range over the whole term universe.
func (v *vocabulary) randomTriples(rng *rand.Rand, edges int) []rdf.Triple {
	var subjects []rdf.Term
	for _, t := range v.terms {
		if t.IsIRI() || t.IsBlank() {
			subjects = append(subjects, t)
		}
	}
	if len(subjects) == 0 || len(v.props) == 0 {
		return nil
	}
	n := rng.Intn(edges + 1)
	triples := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		s := subjects[rng.Intn(len(subjects))]
		p := v.props[rng.Intn(len(v.props))]
		o := v.terms[rng.Intn(len(v.terms))]
		triples = append(triples, rdf.T(s, rdf.NewIRI(p), o))
	}
	return triples
}

// candidates returns the focus nodes to test on a graph: every term in
// the vocabulary plus every subject/object of the graph, deduped, in a
// deterministic order.
func (v *vocabulary) candidates(triples []rdf.Triple) []rdf.Term {
	seen := make(map[string]bool)
	var out []rdf.Term
	add := func(t rdf.Term) {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	for _, t := range v.terms {
		add(t)
	}
	for _, tr := range triples {
		add(tr.S)
		add(tr.O)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.Compare(out[i], out[j]) < 0 })
	return out
}
