package contain

import (
	"sort"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// ChangeKind classifies what happened to one definition between two
// schema versions, in terms of the constraint each version imposes on a
// data graph: the implication shape ¬target ∨ shape, which a node
// satisfies exactly when it is not targeted or conforms.
type ChangeKind int

const (
	// ChangeEquivalent: both directions proved — the definitions accept
	// exactly the same graphs.
	ChangeEquivalent ChangeKind = iota
	// ChangeWeakened: the old constraint implies the new one — every
	// graph valid under the old definition stays valid. Non-breaking.
	ChangeWeakened
	// ChangeStrengthened: the new constraint implies the old one but not
	// vice versa — existing valid data may now violate. Breaking.
	ChangeStrengthened
	// ChangeIncomparable: neither direction proved. Conservatively
	// breaking: existing data has no validity guarantee under the new
	// definition.
	ChangeIncomparable
	// ChangeAdded: the definition exists only in the new schema — a new
	// constraint on existing data. Breaking.
	ChangeAdded
	// ChangeRemoved: the definition exists only in the old schema — a
	// constraint disappeared. Non-breaking.
	ChangeRemoved
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeEquivalent:
		return "equivalent"
	case ChangeWeakened:
		return "weakened"
	case ChangeStrengthened:
		return "strengthened"
	case ChangeIncomparable:
		return "incomparable"
	case ChangeAdded:
		return "added"
	case ChangeRemoved:
		return "removed"
	}
	return "change(?)"
}

// Breaking reports whether existing data valid under the old schema may
// violate the new one.
func (k ChangeKind) Breaking() bool {
	return k == ChangeStrengthened || k == ChangeIncomparable || k == ChangeAdded
}

// Change is the diff verdict for one definition name.
type Change struct {
	// Name is the definition's shapes-graph IRI.
	Name rdf.Term
	// Kind classifies the change.
	Kind ChangeKind
	// OldToNew / NewToOld are the containment verdicts for "old
	// constraint implies new" and the reverse. Zero-valued (Unknown) for
	// added/removed definitions.
	OldToNew, NewToOld Verdict
	// Witness carries the refutation node for a NotContained direction,
	// when the model search found one (OldToNew preferred).
	Witness *Witness
}

// Report is a full schema diff.
type Report struct {
	Changes []Change
}

// Breaking returns the breaking subset of the changes.
func (r *Report) Breaking() []Change {
	var out []Change
	for _, ch := range r.Changes {
		if ch.Kind.Breaking() {
			out = append(out, ch)
		}
	}
	return out
}

// Diff compares two schema versions definition by definition. Only
// IRI-named definitions are compared directly — blank-node definitions
// (property shapes) have unstable labels across files, and their changes
// surface through the named definitions that reference them, which the
// checker resolves against the respective schema. Verdicts come from
// Check: structural proof first, randomized refutation on Unknown.
func Diff(old, new *schema.Schema, cfg RefuteConfig) *Report {
	oldNames := namedDefs(old)
	newNames := namedDefs(new)
	var names []rdf.Term
	seen := make(map[rdf.Term]bool)
	for _, n := range append(append([]rdf.Term{}, oldNames...), newNames...) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool { return rdf.Compare(names[i], names[j]) < 0 })

	c := New(old, new)
	rep := &Report{}
	for _, name := range names {
		oldDef, inOld := lookup(old, name)
		newDef, inNew := lookup(new, name)
		switch {
		case !inNew:
			rep.Changes = append(rep.Changes, Change{Name: name, Kind: ChangeRemoved})
			continue
		case !inOld:
			rep.Changes = append(rep.Changes, Change{Name: name, Kind: ChangeAdded})
			continue
		}
		impOld := implication(oldDef)
		impNew := implication(newDef)
		fwd := c.Check(impOld, impNew, cfg)
		bwd := c.flip.Check(impNew, impOld, cfg)
		ch := Change{Name: name, OldToNew: fwd.Verdict, NewToOld: bwd.Verdict}
		switch {
		case fwd.Verdict == Contained && bwd.Verdict == Contained:
			ch.Kind = ChangeEquivalent
		case fwd.Verdict == Contained:
			ch.Kind = ChangeWeakened
		case bwd.Verdict == Contained:
			ch.Kind = ChangeStrengthened
		default:
			ch.Kind = ChangeIncomparable
		}
		if fwd.Witness != nil {
			ch.Witness = fwd.Witness
		} else if bwd.Witness != nil {
			ch.Witness = bwd.Witness
		}
		rep.Changes = append(rep.Changes, ch)
	}
	return rep
}

// implication builds ¬target ∨ shape: the per-node constraint the
// definition imposes on a graph.
func implication(d schema.Definition) shape.Shape {
	target := d.Target
	if target == nil {
		target = shape.FalseShape()
	}
	return shape.OrOf(shape.Neg(target), d.Shape)
}

func namedDefs(h *schema.Schema) []rdf.Term {
	if h == nil {
		return nil
	}
	var out []rdf.Term
	for _, d := range h.Definitions() {
		if d.Name.IsIRI() {
			out = append(out, d.Name)
		}
	}
	return out
}

func lookup(h *schema.Schema, name rdf.Term) (schema.Definition, bool) {
	if h == nil {
		return schema.Definition{}, false
	}
	for _, d := range h.Definitions() {
		if d.Name == name {
			return d, true
		}
	}
	return schema.Definition{}, false
}
