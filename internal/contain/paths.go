package contain

import (
	"shaclfrag/internal/paths"
)

// pathSub is sound path-language inclusion: it returns true only when
// every walk matching a also matches b, so ⟦a⟧G(v) ⊆ ⟦b⟧G(v) on every
// graph. A nil expression is the identity path id = {ε}. The relation is
// syntax-directed and incomplete — false means "not proved", not "not
// included".
func pathSub(a, b paths.Expr) bool {
	if a == nil && b == nil {
		return true
	}
	if a == nil {
		// id ⊑ b iff b accepts the empty walk.
		return paths.CanBeEmpty(b)
	}
	if b == nil {
		// Only ε-only languages fit inside id; no constructor here is
		// guaranteed ε-only, so stay conservative.
		return false
	}
	if paths.Equal(a, b) {
		return true
	}
	// Decompose the right side first: a bigger language on the right is
	// the common case (alternation arms, stars, optionals).
	switch y := b.(type) {
	case paths.Alt:
		if pathSub(a, y.Left) || pathSub(a, y.Right) {
			return true
		}
	case paths.Star:
		// a ⊑ y* when a ⊑ y, or a is a repetition/option/sequence of
		// languages each inside y*.
		switch x := a.(type) {
		case paths.Star:
			if pathSub(x.X, b) {
				return true
			}
		case paths.ZeroOrOne:
			if pathSub(x.X, b) {
				return true
			}
		case paths.Seq:
			if pathSub(x.Left, b) && pathSub(x.Right, b) {
				return true
			}
		}
		if pathSub(a, y.X) {
			return true
		}
	case paths.ZeroOrOne:
		if pathSub(a, y.X) {
			return true
		}
		if x, ok := a.(paths.ZeroOrOne); ok && pathSub(x.X, y.X) {
			return true
		}
	}
	// Then the left side.
	switch x := a.(type) {
	case paths.Alt:
		return pathSub(x.Left, b) && pathSub(x.Right, b)
	case paths.Seq:
		if y, ok := b.(paths.Seq); ok {
			return pathSub(x.Left, y.Left) && pathSub(x.Right, y.Right)
		}
	case paths.Inverse:
		if y, ok := b.(paths.Inverse); ok {
			return pathSub(x.X, y.X)
		}
	case paths.ZeroOrOne:
		return paths.CanBeEmpty(b) && pathSub(x.X, b)
	}
	return false
}
