package contain_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"shaclfrag/internal/contain"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

// TestContainmentSoundness is the property gate wired into scripts/
// check.sh: a Contained verdict must never be refuted by randomized
// model search. For every schema in examples/shapes/ it takes all
// pairwise containment questions over the schema's shapes, targets and
// requests, and re-asks each Contained answer against ≥50 random graphs
// drawn from the shapes' own vocabulary — a witness is a soundness bug.
func TestContainmentSoundness(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "shapes", "*.ttl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example schemas found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			h, err := shaclsyn.ParseSchema(string(src))
			if err != nil {
				t.Fatal(err)
			}
			var candidates []shape.Shape
			for _, d := range h.Definitions() {
				candidates = append(candidates, d.Shape)
				if d.Target != nil {
					candidates = append(candidates, d.Target, shape.AndOf(d.Shape, d.Target))
				}
			}
			assertSoundOverPairs(t, h, candidates, 50)
		})
	}
}

// TestContainmentSoundnessRandomShapes fuzzes the checker with random
// shape pairs over the shapetest universe, including all sub-pairs of
// each generated pair's NNF — negation puts every rule, including the
// contravariant ones, under test.
func TestContainmentSoundnessRandomShapes(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		a := shape.NNF(shapetest.RandomShape(rng, 3))
		b := shape.NNF(shapetest.RandomShape(rng, 3))
		// The derived combinations guarantee provable verdicts (weakening,
		// widening, reflexivity) so the refuter is genuinely exercised.
		candidates := []shape.Shape{
			a, b,
			shape.AndOf(a, b),
			shape.OrOf(a, b),
			shape.Neg(a),
		}
		assertSoundOverPairs(t, nil, candidates, 25)
	}
}

// TestContainmentSoundnessBenchmarkSchema cross-checks Contained
// verdicts over the 57-definition benchmark schema against the Tyrol
// generator's graphs: for every pair proved contained, every conforming
// node of the left shape on a real synthetic graph must conform to the
// right shape.
func TestContainmentSoundnessBenchmarkSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-schema crosscheck is slow")
	}
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	c := contain.New(h, h)
	defs := h.Definitions()
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 7, DirtyRate: 0.3})

	var contained [][2]int
	for i := range defs {
		for j := range defs {
			if i != j && c.Contains(defs[i].Shape, defs[j].Shape) == contain.Contained {
				contained = append(contained, [2]int{i, j})
			}
		}
	}
	if len(contained) == 0 {
		t.Log("no nontrivial contained pairs in benchmark schema")
	}
	ev := shape.NewEvaluator(g, h)
	for _, pair := range contained {
		left, right := defs[pair[0]].Shape, defs[pair[1]].Shape
		for _, id := range g.NodeIDs() {
			if ev.Conforms(id, left) && !ev.Conforms(id, right) {
				t.Fatalf("unsound: %s ⊑ %s refuted by node %s on Tyrol graph",
					defs[pair[0]].Name, defs[pair[1]].Name, g.Term(id))
			}
		}
	}
}

// assertSoundOverPairs asks every ordered pair of candidate shapes and
// requires the refuter to stay silent on Contained verdicts.
func assertSoundOverPairs(t *testing.T, h *schema.Schema, candidates []shape.Shape, graphs int) {
	t.Helper()
	c := contain.New(h, h)
	checked := 0
	for i, a := range candidates {
		for j, b := range candidates {
			if i == j || c.Contains(a, b) != contain.Contained {
				continue
			}
			checked++
			if w, refuted := c.Refute(a, b, contain.RefuteConfig{Graphs: graphs}); refuted {
				t.Fatalf("unsound verdict: Contains(%s, %s) = contained, refuted at node %s (seed %d, %d triples)",
					a, b, w.Node, w.Seed, len(w.Graph))
			}
		}
	}
	if checked == 0 {
		// Every schema exercised here has at least the trivial request ⊑
		// shape weakenings; zero checks means the harness went wrong.
		for _, s := range candidates {
			if v := c.Contains(s, shape.TrueShape()); v != contain.Contained {
				t.Fatalf("Contains(%s, ⊤) = %s", s, v)
			}
		}
	}
}

var _ = rdf.Compare // keep the import when test bodies shift
