package contain

import (
	"fmt"

	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapelint"
)

// Lint runs the subsumption diagnostics over a schema and returns
// findings in shapelint's diagnostic format (sorted by shapelint.Sort):
//
//   - SL010: a definition is redundant — some other definition targets
//     every node it targets with an at-least-as-strong shape, so removing
//     it changes no validation verdict.
//   - SL011: a conjunct is implied by a sibling conjunct of the same
//     conjunction and constrains nothing on its own.
//
// Both rely only on Contained verdicts from the structural checker, so a
// finding is a proof, never a guess. Callers (shaclsyn.LintSource, the
// fragserver load gate) merge these with shapelint.Run's findings.
func Lint(h *schema.Schema) []shapelint.Diagnostic {
	if h == nil {
		return nil
	}
	c := New(h, h)
	folder := shapelint.NewFolder(h)
	var diags []shapelint.Diagnostic

	defs := h.Definitions()
	// SL010. Definitions without a satisfiable target select no focus
	// nodes themselves (property shapes reached via hasShape, SL006's
	// territory) and are skipped on both sides of the comparison.
	targeted := make([]bool, len(defs))
	// An unsatisfiable definition subsumes everything with its target, but
	// reporting its victims as redundant is noise — the unsatisfiability
	// itself is the finding (SL001/SL003, error severity) — so such
	// definitions are excluded from the subsuming side.
	usableSubsumer := make([]bool, len(defs))
	for i, d := range defs {
		targeted[i] = d.Target != nil && !shapelint.IsFalse(folder.Fold(d.Target))
		usableSubsumer[i] = targeted[i] && !shapelint.IsFalse(folder.Fold(d.Shape))
	}
	subsumes := func(i, j int) bool {
		// Definition j subsumes i: j targets every node i targets, and
		// j's shape is at least as strong.
		return c.Contains(defs[i].Target, defs[j].Target) == Contained &&
			c.Contains(defs[j].Shape, defs[i].Shape) == Contained
	}
	for i := range defs {
		if !targeted[i] {
			continue
		}
		for j := range defs {
			if j == i || !usableSubsumer[j] {
				continue
			}
			if !subsumes(i, j) {
				continue
			}
			// Mutual subsumption would flag both; keep the earlier
			// declaration and report the later one.
			if j > i && subsumes(j, i) {
				continue
			}
			diags = append(diags, shapelint.Diagnostic{
				Code:     shapelint.CodeRedundant,
				Severity: shapelint.Warning,
				Shape:    defs[i].Name,
				Detail:   "subsumed by " + defs[j].Name.String(),
				Message: fmt.Sprintf(
					"definition is redundant: %s targets every node this shape targets and its shape is at least as strong",
					defs[j].Name),
			})
			break
		}
	}

	// SL011: walk every conjunction in every NNF body. seen dedupes
	// findings from structurally repeated conjunctions.
	seen := make(map[string]bool)
	for _, d := range defs {
		shape.Walk(shape.NNF(d.Shape), func(n shape.Shape) {
			and, ok := n.(*shape.And)
			if !ok {
				return
			}
			for i, ci := range and.Xs {
				for j, cj := range and.Xs {
					if j == i || c.Contains(cj, ci) != Contained {
						continue
					}
					// Mutually-implied conjuncts (duplicates up to
					// equivalence): report only the later one.
					if j > i && c.Contains(ci, cj) == Contained {
						continue
					}
					k := d.Name.String() + "\x00" + ci.String() + "\x00" + cj.String()
					if seen[k] {
						break
					}
					seen[k] = true
					diags = append(diags, shapelint.Diagnostic{
						Code:     shapelint.CodeImpliedConjunct,
						Severity: shapelint.Warning,
						Shape:    d.Name,
						Detail:   ci.String() + " ⊣ " + cj.String(),
						Message: fmt.Sprintf(
							"conjunct %s is implied by sibling conjunct %s and constrains nothing",
							ci, cj),
					})
					break
				}
			}
		})
	}

	shapelint.Sort(diags)
	return diags
}

// LintMerged runs shapelint.Run and Lint and returns the merged, sorted
// findings — the full diagnostic stream for a schema.
func LintMerged(h *schema.Schema) []shapelint.Diagnostic {
	diags := append(shapelint.Run(h), Lint(h)...)
	shapelint.Sort(diags)
	return diags
}
