package contain_test

import (
	"testing"

	"shaclfrag/internal/contain"
	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

func iri(local string) rdf.Term { return shapetest.IRI(local) }
func p(name string) paths.Expr  { return paths.P(shapetest.Base + name) }

func intLit(n int64) rdf.Term { return rdf.NewInteger(n) }

func same() *contain.Checker { return contain.New(nil, nil) }

func wantContained(t *testing.T, c *contain.Checker, a, b shape.Shape) {
	t.Helper()
	if v := c.Contains(a, b); v != contain.Contained {
		t.Errorf("Contains(%s, %s) = %s, want contained", a, b, v)
	}
}

func wantUnproved(t *testing.T, c *contain.Checker, a, b shape.Shape) {
	t.Helper()
	if v := c.Contains(a, b); v != contain.Unknown {
		t.Errorf("Contains(%s, %s) = %s, want unknown", a, b, v)
	}
}

func TestStructuralRules(t *testing.T) {
	c := same()
	top := shape.TrueShape()
	a := shape.Value(iri("a"))
	b := shape.NodeTestShape(shape.IsIRI{})

	// Constants and reflexivity.
	wantContained(t, c, shape.FalseShape(), a)
	wantContained(t, c, a, top)
	wantContained(t, c, a, a)

	// Conjunct weakening / right-conjunction introduction.
	wantContained(t, c, shape.AndOf(a, b), a)
	wantContained(t, c, shape.AndOf(a, b), shape.AndOf(b, a))
	// (a is an IRI constant, so a ⊑ a ∧ isIRI actually holds — use a
	// genuinely independent conjunct for the negative case.)
	wantUnproved(t, c, a, shape.AndOf(a, shape.Min(1, p("p"), top)))

	// Disjunct widening / left-disjunction elimination.
	wantContained(t, c, a, shape.OrOf(b, a))
	wantContained(t, c, shape.OrOf(a, b), shape.OrOf(b, a, shape.Value(iri("c"))))
	wantUnproved(t, c, shape.OrOf(a, b), a)

	// Cardinality interval inclusion.
	wantContained(t, c, shape.Min(3, p("p"), top), shape.Min(1, p("p"), top))
	wantUnproved(t, c, shape.Min(1, p("p"), top), shape.Min(3, p("p"), top))
	wantContained(t, c, shape.Max(1, p("p"), top), shape.Max(4, p("p"), top))
	wantUnproved(t, c, shape.Max(4, p("p"), top), shape.Max(1, p("p"), top))

	// Quantifier body covariance, ≤n body contravariance.
	wantContained(t, c, shape.Min(1, p("p"), a), shape.Min(1, p("p"), shape.OrOf(a, b)))
	wantContained(t, c, shape.Max(2, p("p"), shape.OrOf(a, b)), shape.Max(2, p("p"), a))
	wantContained(t, c, shape.All(p("p"), a), shape.All(p("p"), shape.OrOf(a, b)))

	// ∀E.φ ⊑ ≤0 E.ψ when φ ∧ ψ is unsatisfiable.
	isLit := shape.NodeTestShape(shape.IsLiteral{})
	wantContained(t, c, shape.All(p("p"), b), shape.Max(0, p("p"), isLit))

	// Negated atoms: contrapositive.
	wantContained(t, c, shape.Neg(shape.OrOf(a, b)), shape.Neg(a))
}

func TestPathInclusionRules(t *testing.T) {
	c := same()
	top := shape.TrueShape()
	pq := paths.AltOf(p("p"), p("q"))

	// ≥ widens along the path, ≤ narrows.
	wantContained(t, c, shape.Min(1, p("p"), top), shape.Min(1, pq, top))
	wantUnproved(t, c, shape.Min(1, pq, top), shape.Min(1, p("p"), top))
	wantContained(t, c, shape.Max(1, pq, top), shape.Max(1, p("p"), top))
	wantContained(t, c, shape.All(pq, top), shape.All(p("p"), top))

	// Star absorbs its base and repetitions; option absorbs its base.
	star := paths.Star{X: p("p")}
	wantContained(t, c, shape.Min(1, p("p"), top), shape.Min(1, star, top))
	wantContained(t, c, shape.Min(1, paths.ZeroOrOne{X: p("p")}, top), shape.Min(1, star, top))
	wantContained(t, c, shape.Min(1, paths.Seq{Left: p("p"), Right: star}, top), shape.Min(1, star, top))
	wantContained(t, c, shape.Min(1, p("p"), top), shape.Min(1, paths.ZeroOrOne{X: p("p")}, top))

	// Inverse and sequence are congruences.
	wantContained(t, c,
		shape.Min(1, paths.Inv(p("p")), top), shape.Min(1, paths.Inv(pq), top))
	wantContained(t, c,
		shape.Min(1, paths.Seq{Left: p("p"), Right: p("q")}, top),
		shape.Min(1, paths.Seq{Left: pq, Right: p("q")}, top))
}

func TestAtomRules(t *testing.T) {
	c := same()
	five := intLit(5)

	// hasValue against tests and negated atoms.
	wantContained(t, c, shape.Value(five), shape.NodeTestShape(shape.IsLiteral{}))
	wantContained(t, c, shape.Value(five), shape.Neg(shape.NodeTestShape(shape.IsIRI{})))
	wantContained(t, c, shape.Value(five), shape.Neg(shape.Value(intLit(6))))
	wantUnproved(t, c, shape.Value(five), shape.Neg(shape.Value(five)))

	// Node-test implication lattice.
	imp := func(a, b shape.NodeTest) { wantContained(t, c, shape.NodeTestShape(a), shape.NodeTestShape(b)) }
	noimp := func(a, b shape.NodeTest) { wantUnproved(t, c, shape.NodeTestShape(a), shape.NodeTestShape(b)) }
	imp(shape.Datatype{IRI: rdf.XSDString}, shape.IsLiteral{})
	imp(shape.MinInclusive{Bound: five}, shape.IsLiteral{})
	imp(shape.MinInclusive{Bound: five}, shape.MinInclusive{Bound: intLit(3)})
	imp(shape.MinExclusive{Bound: five}, shape.MinInclusive{Bound: five})
	imp(shape.MaxInclusive{Bound: five}, shape.MaxExclusive{Bound: intLit(6)})
	imp(shape.MinLength{N: 4}, shape.MinLength{N: 2})
	imp(shape.MaxLength{N: 2}, shape.MaxLength{N: 4})
	imp(shape.AnyOf{Tests: []shape.NodeTest{shape.Datatype{IRI: rdf.XSDString}, shape.HasLang{Tag: "en"}}},
		shape.IsLiteral{})
	imp(shape.IsIRI{}, shape.AnyOf{Tests: []shape.NodeTest{shape.IsBlank{}, shape.IsIRI{}}})
	noimp(shape.MinInclusive{Bound: intLit(3)}, shape.MinInclusive{Bound: five})
	noimp(shape.IsLiteral{}, shape.Datatype{IRI: rdf.XSDString})

	// Tests against negated tests: disjoint kinds prove the negation.
	wantContained(t, c, shape.NodeTestShape(shape.IsIRI{}),
		shape.Neg(shape.NodeTestShape(shape.Datatype{IRI: rdf.XSDString})))
	// test ⊑ ¬hasValue(c) when the constant fails the test.
	wantContained(t, c, shape.NodeTestShape(shape.IsIRI{}), shape.Neg(shape.Value(five)))

	// Closed-shape allowed-set inclusion.
	wantContained(t, c,
		shape.ClosedShape(shapetest.Base+"p"),
		shape.ClosedShape(shapetest.Base+"p", shapetest.Base+"q"))
	wantUnproved(t, c,
		shape.ClosedShape(shapetest.Base+"p", shapetest.Base+"q"),
		shape.ClosedShape(shapetest.Base+"p"))
}

func TestHasShapeResolution(t *testing.T) {
	strong := schema.MustNew(schema.Definition{
		Name:  iri("S"),
		Shape: shape.Min(2, p("p"), shape.TrueShape()),
	})
	weak := schema.MustNew(schema.Definition{
		Name:  iri("S"),
		Shape: shape.Min(1, p("p"), shape.TrueShape()),
	})
	ref := shape.Ref(iri("S"))

	// Same schema: reflexive without unfolding.
	cSame := contain.New(strong, strong)
	wantContained(t, cSame, ref, ref)

	// Cross-schema: the same name resolves per side.
	c := contain.New(strong, weak)
	wantContained(t, c, ref, ref)
	back := contain.New(weak, strong)
	wantUnproved(t, back, ref, ref)

	// Undefined references behave as ⊤.
	wantContained(t, c, ref, shape.Ref(iri("Undefined")))

	// References mix with structural rules.
	wantContained(t, c, shape.AndOf(ref, shape.Value(iri("a"))), ref)
}

func TestEquivalentReorderedDefinitions(t *testing.T) {
	a := shape.Min(1, p("p"), shape.TrueShape())
	b := shape.All(p("q"), shape.NodeTestShape(shape.IsLiteral{}))
	c := same()
	if v := c.Equivalent(shape.AndOf(a, b), shape.AndOf(b, a)); v != contain.Contained {
		t.Fatalf("reordered conjunctions must be equivalent, got %s", v)
	}
	if v := c.Equivalent(a, b); v != contain.Unknown {
		t.Fatalf("unrelated shapes must stay unknown, got %s", v)
	}
}

func TestRefuterFindsWitness(t *testing.T) {
	c := same()
	top := shape.TrueShape()
	// ≥1 p.⊤ does not contain ≥2 p.⊤; any node with exactly one p-edge
	// refutes it.
	res := c.Check(shape.Min(1, p("p"), top), shape.Min(2, p("p"), top), contain.RefuteConfig{})
	if res.Verdict != contain.NotContained {
		t.Fatalf("verdict = %s, want not-contained", res.Verdict)
	}
	if res.Witness == nil || len(res.Witness.Graph) == 0 {
		t.Fatalf("refutation must carry a witness graph")
	}
	// ⊤ does not contain ≥1 p.⊤: refuted by any node without p-edges.
	res = c.Check(top, shape.Min(1, p("p"), top), contain.RefuteConfig{})
	if res.Verdict != contain.NotContained {
		t.Fatalf("verdict = %s, want not-contained", res.Verdict)
	}
	// Contained questions never reach the refuter.
	res = c.Check(shape.Min(2, p("p"), top), shape.Min(1, p("p"), top), contain.RefuteConfig{})
	if res.Verdict != contain.Contained || res.Witness != nil {
		t.Fatalf("got %s with witness %v", res.Verdict, res.Witness)
	}
}

func TestComputeClasses(t *testing.T) {
	a := shape.Min(1, p("p"), shape.TrueShape())
	b := shape.NodeTestShape(shape.IsIRI{})
	shapes := []shape.Shape{
		shape.AndOf(a, b),
		shape.AndOf(b, a), // congruent to 0
		b,
		shape.AndOf(b, shape.TrueShape()), // congruent to 2 after ⊤-drop
	}
	cl := contain.ComputeClasses(nil, shapes)
	if cl.NumClasses != 2 || cl.Shared != 2 {
		t.Fatalf("classes = %+v, want 2 classes with 2 shared members", cl)
	}
	if cl.Rep[1] != 0 || cl.Rep[3] != 2 {
		t.Fatalf("representatives = %v", cl.Rep)
	}
	aliases := cl.Aliases(shapes)
	if len(aliases) != 2 || aliases[shapes[1]] != shapes[0] || aliases[shapes[3]] != shapes[2] {
		t.Fatalf("aliases = %v", aliases)
	}
}
