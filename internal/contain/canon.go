package contain

import (
	"sort"
	"strconv"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// CanonKey renders phi in a canonical form under the neighborhood
// congruence: two shapes with equal keys conform on exactly the same
// nodes AND have byte-identical neighborhoods B(v, G, ·) on every graph
// and focus node, so the NeighborhoodCache may serve one's entries for
// the other (see core.NeighborhoodCache.SetAliases).
//
// This is deliberately stricter than mutual containment. Equivalent
// shapes can trace different triples — Or(φ) and Or(φ, φ∧eq(q)) are
// mutually contained, but the second traces the eq edges of its extra
// disjunct — so the congruence admits only rewrites proved to commute
// with the Table 2 trace semantics AND with negation normal form (≤n
// bodies are traced through their negation):
//
//   - NNF normalization;
//   - hasShape inlining (B(v, hasShape(s)) is exactly B(v, nnf(def(s)));
//     undefined names are ⊤, the evaluator's default);
//   - ∧/∨ flattening, argument sorting and deduplication;
//   - dropping literal ⊤ conjuncts and literal ⊥ disjuncts.
//
// Notably absent: shapelint's folding (≥0 E.φ → ⊤ changes traced bytes:
// a conforming ≥0 still traces its conforming successors), ⊥-collapse of
// conjunctions (¬(φ∧⊥) = ¬φ∨⊤ still traces ¬φ under a ≤n body), and
// ⊤-collapse of disjunctions (a ⊤ disjunct flips conformance of the
// whole disjunction without contributing triples).
func CanonKey(h *schema.Schema, phi shape.Shape) string {
	c := canonizer{h: h, visiting: make(map[rdf.Term]bool)}
	return c.canon(shape.NNF(phi))
}

type canonizer struct {
	h        *schema.Schema
	visiting map[rdf.Term]bool
}

// canon renders an NNF shape. Callers must pass NNF input; recursion
// preserves it.
func (c *canonizer) canon(phi shape.Shape) string {
	switch x := phi.(type) {
	case *shape.True:
		return "⊤"
	case *shape.False:
		return "⊥"
	case *shape.HasShape:
		return c.inline(x.Name, false)
	case *shape.Not:
		if ref, ok := x.X.(*shape.HasShape); ok {
			return c.inline(ref.Name, true)
		}
		return "¬(" + c.canon(x.X) + ")"
	case *shape.And:
		return c.nary(x.Xs, " ∧ ", "⊤")
	case *shape.Or:
		return c.nary(x.Xs, " ∨ ", "⊥")
	case *shape.MinCount:
		return "≥" + strconv.Itoa(x.N) + " " + pathKey(x.Path) + ".(" + c.canon(x.X) + ")"
	case *shape.MaxCount:
		return "≤" + strconv.Itoa(x.N) + " " + pathKey(x.Path) + ".(" + c.canon(x.X) + ")"
	case *shape.Forall:
		return "∀" + pathKey(x.Path) + ".(" + c.canon(x.X) + ")"
	default:
		// Atoms: test, hasValue, eq, disj, closed, orders, uniqueLang.
		// String renderings are deterministic and parameter-complete.
		return phi.String()
	}
}

// nary canonicalizes ∧/∨ arguments: flatten (constructors already did),
// drop the unit (⊤ for ∧, ⊥ for ∨; the opposite constant must NOT be
// dropped or collapsed), sort, dedupe.
func (c *canonizer) nary(xs []shape.Shape, op, unit string) string {
	ks := make([]string, 0, len(xs))
	seen := make(map[string]bool, len(xs))
	for _, x := range xs {
		k := c.canon(x)
		if k == unit || seen[k] {
			continue
		}
		seen[k] = true
		ks = append(ks, k)
	}
	switch len(ks) {
	case 0:
		return unit
	case 1:
		return ks[0]
	}
	sort.Strings(ks)
	return "(" + strings.Join(ks, op) + ")"
}

// inline resolves a (possibly negated) reference to its definition's
// canonical form, mirroring the extractor: B(v, hasShape(s)) is
// B(v, nnf(def)) and B(v, ¬hasShape(s)) is B(v, negNNF(def)); undefined
// names resolve to ⊤. The cycle guard renders recursive references
// opaquely — schema.New rejects cycles, so it only protects hand-built
// schemas from divergence.
func (c *canonizer) inline(name rdf.Term, negated bool) string {
	if c.visiting[name] {
		s := "hasShape(" + name.String() + ")"
		if negated {
			return "¬(" + s + ")"
		}
		return s
	}
	body := shape.Shape(shape.TrueShape())
	if c.h != nil {
		if b, ok := c.h.Def(name); ok {
			body = b
		}
	}
	if negated {
		body = shape.Neg(body)
	}
	c.visiting[name] = true
	k := c.canon(shape.NNF(body))
	delete(c.visiting, name)
	return k
}

func pathKey(e paths.Expr) string {
	if e == nil {
		return "id"
	}
	return e.String()
}
