// Package contain decides shape containment: given two shape formulas
// φ1 and φ2 (each interpreted against its own schema), is every node
// conforming to φ1 on every graph also conforming to φ2? The full
// problem is intractable for the paper's shape algebra, so the checker
// is three-valued and sound-but-incomplete:
//
//   - Contained — proved: ⟦φ1⟧ ⊆ ⟦φ2⟧ on every graph.
//   - NotContained — refuted: a concrete witness graph and node conform
//     to φ1 but not φ2 (produced by the random-graph refuter, refute.go).
//   - Unknown — neither; always safe for callers to treat as "no".
//
// The structural core (this file) applies subsumption rules over NNF:
// conjunct weakening, disjunct widening, cardinality interval inclusion
// (≥n ⊑ ≥m for n ≥ m), node-test implication, value/class inclusion,
// path language inclusion (paths.go), and coinductive discharge of
// hasShape pairs through an assumption set. It reuses shapelint's
// constant folder as validity/unsatisfiability probes: φ1 folding to ⊥
// or φ2 folding to ⊤ settles containment immediately.
//
// On top of the checker the package derives three operational analyses:
// cache-sharing equivalence classes for fragserver (classes.go, canon.go),
// schema diffing for `shaclfrag schema-diff` (diff.go), and the SL010/
// SL011 subsumption lints (lint.go).
package contain

import (
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapelint"
)

// Verdict is the checker's three-valued answer.
type Verdict int

const (
	// Unknown means the checker could neither prove nor refute
	// containment. Sound callers treat it as "not contained".
	Unknown Verdict = iota
	// Contained means containment is proved: on every graph, every node
	// conforming to the left shape conforms to the right shape.
	Contained
	// NotContained means containment is refuted by a concrete witness
	// (see Checker.Check and Witness).
	NotContained
)

func (v Verdict) String() string {
	switch v {
	case Contained:
		return "contained"
	case NotContained:
		return "not-contained"
	case Unknown:
		return "unknown"
	}
	return "verdict(?)"
}

// Checker decides φ1 ⊑ φ2 with φ1 interpreted against a left schema and
// φ2 against a right schema (the two coincide for single-schema
// questions; they differ when diffing schema versions). A Checker is not
// safe for concurrent use.
type Checker struct {
	left, right *schema.Schema
	foldL       *shapelint.Folder
	foldR       *shapelint.Folder

	// flip decides the reverse direction (right ⊑ left) and serves the
	// contravariant positions: ≤n bodies and negated atoms.
	flip *Checker

	// memo caches sub results per (left key, right key) pair. Only
	// entries derived without live coinductive assumptions are stored.
	memo map[string]Verdict
	// assume holds hasShape pairs currently being discharged: while
	// proving hasShape(a) ⊑ hasShape(b) the pair is assumed, so a
	// recursive re-encounter concludes coinductively.
	assume map[string]bool
	// active guards against divergence on schemas with reference cycles
	// (schema.New rejects them, but hand-built Defs could not).
	active map[string]bool
}

// New builds a checker for φ1 ⊑ φ2 with φ1 resolved against left and φ2
// against right. Nil schemas are allowed (hasShape then resolves to ⊤,
// matching the evaluator's default for undefined names).
func New(left, right *schema.Schema) *Checker {
	c := &Checker{left: left, right: right}
	c.flip = &Checker{left: right, right: left, flip: c}
	c.init()
	c.flip.init()
	return c
}

func (c *Checker) init() {
	c.foldL = shapelint.NewFolder(c.left)
	c.foldR = shapelint.NewFolder(c.right)
	c.memo = make(map[string]Verdict)
	c.assume = make(map[string]bool)
	c.active = make(map[string]bool)
}

// sameSchema reports whether both sides resolve hasShape identically, so
// syntactic equality implies semantic equality.
func (c *Checker) sameSchema() bool { return c.left == c.right }

// Contains runs the structural checker on φ1 ⊑ φ2. It returns Contained
// or Unknown, never NotContained — use Check to also attempt refutation.
func (c *Checker) Contains(phi1, phi2 shape.Shape) Verdict {
	return c.sub(shape.NNF(phi1), shape.NNF(phi2))
}

// Equivalent reports mutual containment: Contained when φ1 ⊑ φ2 and
// φ2 ⊑ φ1 are both proved, Unknown otherwise.
func (c *Checker) Equivalent(phi1, phi2 shape.Shape) Verdict {
	if c.Contains(phi1, phi2) == Contained && c.flip.Contains(phi2, phi1) == Contained {
		return Contained
	}
	return Unknown
}

// sub is the structural subsumption judgment over NNF shapes: a is
// interpreted in the left schema, b in the right. It returns Contained
// only when the applied rules prove ⟦a⟧ ⊆ ⟦b⟧ on every graph.
func (c *Checker) sub(a, b shape.Shape) Verdict {
	if isFalse(a) || isTrue(b) {
		return Contained
	}
	pair := key(a) + "\x1f⊑\x1f" + key(b)
	if v, ok := c.memo[pair]; ok {
		return v
	}
	if c.active[pair] {
		return Unknown
	}
	c.active[pair] = true
	v := c.subRules(a, b)
	delete(c.active, pair)
	// Results proved under a live assumption are provisional until the
	// assumption discharges; only assumption-free results are cached.
	if len(c.assume) == 0 && len(c.flip.assume) == 0 {
		c.memo[pair] = v
	}
	return v
}

func (c *Checker) subRules(a, b shape.Shape) Verdict {
	// Validity probes through the constant folder: an unsatisfiable left
	// or valid right side settles the question.
	if isFalse(c.foldL.Fold(a)) || isTrue(c.foldR.Fold(b)) {
		return Contained
	}

	// Reflexivity. Cross-schema it only applies when the formula cannot
	// reference definitions, since hasShape resolves differently per side.
	if key(a) == key(b) && (c.sameSchema() || len(shape.ShapeRefs(a)) == 0) {
		return Contained
	}

	// hasShape: discharge pairs coinductively via the assumption set,
	// unfold single-sided references through their own schema.
	ra, aRef := a.(*shape.HasShape)
	rb, bRef := b.(*shape.HasShape)
	switch {
	case aRef && bRef:
		k := ra.Name.String() + "\x1f" + rb.Name.String()
		if c.assume[k] {
			return Contained
		}
		c.assume[k] = true
		v := c.sub(c.resolveLeft(ra), c.resolveRight(rb))
		delete(c.assume, k)
		return v
	case aRef:
		return c.sub(c.resolveLeft(ra), b)
	case bRef:
		return c.sub(a, c.resolveRight(rb))
	}

	// a ⊑ ∧ψi iff a ⊑ ψi for every i.
	if and, ok := b.(*shape.And); ok {
		all := true
		for _, bi := range and.Xs {
			if c.sub(a, bi) != Contained {
				all = false
				break
			}
		}
		if all {
			return Contained
		}
	}
	// ∨φi ⊑ b iff φi ⊑ b for every i.
	if or, ok := a.(*shape.Or); ok {
		all := true
		for _, ai := range or.Xs {
			if c.sub(ai, b) != Contained {
				all = false
				break
			}
		}
		if all {
			return Contained
		}
	}
	// Conjunct weakening: ∧φi ⊑ b if some φi ⊑ b.
	if and, ok := a.(*shape.And); ok {
		for _, ai := range and.Xs {
			if c.sub(ai, b) == Contained {
				return Contained
			}
		}
	}
	// Disjunct widening: a ⊑ ∨ψi if a ⊑ some ψi.
	if or, ok := b.(*shape.Or); ok {
		for _, bi := range or.Xs {
			if c.sub(a, bi) == Contained {
				return Contained
			}
		}
	}

	return c.atomSub(a, b)
}

// resolveLeft returns the NNF body of a left-schema reference; undefined
// names are ⊤, the evaluator's default.
func (c *Checker) resolveLeft(r *shape.HasShape) shape.Shape {
	if c.left != nil {
		if body, ok := c.left.Def(r.Name); ok {
			return shape.NNF(body)
		}
	}
	return shape.TrueShape()
}

func (c *Checker) resolveRight(r *shape.HasShape) shape.Shape {
	if c.right != nil {
		if body, ok := c.right.Def(r.Name); ok {
			return shape.NNF(body)
		}
	}
	return shape.TrueShape()
}

// atomSub covers the quantifier and atom rules once the boolean
// structure is exhausted.
func (c *Checker) atomSub(a, b shape.Shape) Verdict {
	switch x := a.(type) {
	case *shape.MinCount:
		// ≥n E.φ ⊑ ≥m F.ψ when n ≥ m, L(E) ⊆ L(F) and φ ⊑ ψ: the n
		// witnesses are m-or-more F-successors conforming to ψ.
		if y, ok := b.(*shape.MinCount); ok {
			if x.N >= y.N && pathSub(x.Path, y.Path) && c.sub(x.X, y.X) == Contained {
				return Contained
			}
		}
	case *shape.MaxCount:
		// ≤n E.φ ⊑ ≤m F.ψ when n ≤ m, L(F) ⊆ L(E) and ψ ⊑ φ: every
		// F-successor conforming to ψ is an E-successor conforming to φ,
		// of which there are at most n ≤ m. ψ ⊑ φ is right-in-left — the
		// flipped judgment.
		if y, ok := b.(*shape.MaxCount); ok {
			if x.N <= y.N && pathSub(y.Path, x.Path) && c.flip.sub(y.X, x.X) == Contained {
				return Contained
			}
		}
	case *shape.Forall:
		switch y := b.(type) {
		case *shape.Forall:
			// ∀E.φ ⊑ ∀F.ψ when L(F) ⊆ L(E) and φ ⊑ ψ.
			if pathSub(y.Path, x.Path) && c.sub(x.X, y.X) == Contained {
				return Contained
			}
		case *shape.MaxCount:
			// ∀E.φ ⊑ ≤m F.ψ when L(F) ⊆ L(E) and φ ∧ ψ is unsatisfiable:
			// every F-successor conforms to φ, so none conforms to ψ and
			// the count is 0 ≤ m. The joint probe needs both bodies in
			// one schema; restrict to reference-free bodies otherwise.
			if pathSub(y.Path, x.Path) &&
				(c.sameSchema() || len(shape.ShapeRefs(x.X))+len(shape.ShapeRefs(y.X)) == 0) &&
				isFalse(c.foldL.Fold(shape.AndOf(x.X, y.X))) {
				return Contained
			}
		}
	case *shape.HasValue:
		switch y := b.(type) {
		case *shape.Test:
			if y.T.Holds(x.C) {
				return Contained
			}
		case *shape.Not:
			switch z := y.X.(type) {
			case *shape.Test:
				if !z.T.Holds(x.C) {
					return Contained
				}
			case *shape.HasValue:
				if x.C != z.C {
					return Contained
				}
			}
		}
	case *shape.Test:
		switch y := b.(type) {
		case *shape.Test:
			if testImplies(x.T, y.T) {
				return Contained
			}
		case *shape.Not:
			switch z := y.X.(type) {
			case *shape.Test:
				if shapelint.TestsConflict(x.T, z.T) {
					return Contained
				}
			case *shape.HasValue:
				if !x.T.Holds(z.C) {
					return Contained
				}
			}
		}
	case *shape.Closed:
		// closed(P) ⊑ closed(Q) when P ⊆ Q: allowing fewer properties is
		// stricter.
		if y, ok := b.(*shape.Closed); ok && subsetSorted(x.Allowed, y.Allowed) {
			return Contained
		}
	case *shape.Not:
		// ¬φ ⊑ ¬ψ iff ψ ⊑ φ (contrapositive, sides swapped).
		if y, ok := b.(*shape.Not); ok {
			if c.flip.sub(y.X, x.X) == Contained {
				return Contained
			}
		}
	}
	return Unknown
}

// subsetSorted reports a ⊆ b for ascending string slices.
func subsetSorted(a, b []string) bool {
	i := 0
	for _, p := range a {
		for i < len(b) && b[i] < p {
			i++
		}
		if i == len(b) || b[i] != p {
			return false
		}
	}
	return true
}

func isTrue(s shape.Shape) bool  { _, ok := s.(*shape.True); return ok }
func isFalse(s shape.Shape) bool { _, ok := s.(*shape.False); return ok }

// key renders a shape for memoization; String renderings are
// deterministic and parameter-complete.
func key(s shape.Shape) string { return s.String() }
