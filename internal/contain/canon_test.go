package contain_test

import (
	"math/rand"
	"testing"

	"shaclfrag/internal/contain"
	"shaclfrag/internal/core"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/shapetest"
)

// shuffle derives a syntactically different but congruent variant:
// reversed ∧/∨ argument order, a duplicated first argument, a redundant
// ⊤ conjunct or ⊥ disjunct.
func shuffle(rng *rand.Rand, phi shape.Shape) shape.Shape {
	switch x := phi.(type) {
	case *shape.And:
		kids := make([]shape.Shape, 0, len(x.Xs)+1)
		for i := len(x.Xs) - 1; i >= 0; i-- {
			kids = append(kids, shuffle(rng, x.Xs[i]))
		}
		if rng.Intn(2) == 0 {
			kids = append(kids, shuffle(rng, x.Xs[0]))
		}
		if rng.Intn(2) == 0 {
			kids = append(kids, shape.TrueShape())
		}
		return &shape.And{Xs: kids}
	case *shape.Or:
		kids := make([]shape.Shape, 0, len(x.Xs)+1)
		for i := len(x.Xs) - 1; i >= 0; i-- {
			kids = append(kids, shuffle(rng, x.Xs[i]))
		}
		if rng.Intn(2) == 0 {
			kids = append(kids, shuffle(rng, x.Xs[len(x.Xs)-1]))
		}
		if rng.Intn(2) == 0 {
			kids = append(kids, shape.FalseShape())
		}
		return &shape.Or{Xs: kids}
	case *shape.Not:
		return &shape.Not{X: shuffle(rng, x.X)}
	case *shape.MinCount:
		return &shape.MinCount{N: x.N, Path: x.Path, X: shuffle(rng, x.X)}
	case *shape.MaxCount:
		return &shape.MaxCount{N: x.N, Path: x.Path, X: shuffle(rng, x.X)}
	case *shape.Forall:
		return &shape.Forall{Path: x.Path, X: shuffle(rng, x.X)}
	}
	return phi
}

// TestCongruenceByteParity is the machine check behind cache sharing:
// shapes with equal CanonKeys must produce byte-identical neighborhoods
// B(v, G, φ) for every node on random graphs. This is what makes it
// sound for fragserver to serve one definition's cached entries for a
// congruent one.
func TestCongruenceByteParity(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 40
	}
	checked := 0
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		phi := shape.NNF(shapetest.RandomShape(rng, 3))
		variant := shuffle(rng, phi)
		k1 := contain.CanonKey(nil, phi)
		k2 := contain.CanonKey(nil, variant)
		if k1 != k2 {
			t.Fatalf("seed %d: congruent variant changed the canonical key:\n  %s\n  %s\nkeys:\n  %s\n  %s",
				seed, phi, variant, k1, k2)
		}
		if phi.String() != variant.String() {
			checked++
		}
		g := shapetest.RandomGraph(rng, 30)
		for _, n := range []string{"a", "b", "c", "d"} {
			v := shapetest.IRI(n)
			got := core.Neighborhood(g, nil, v, variant)
			want := core.Neighborhood(g, nil, v, phi)
			if !triplesEqual(got, want) {
				t.Fatalf("seed %d node %s: congruent shapes disagree on bytes\nshape:   %s\nvariant: %s\ngot %d triples, want %d",
					seed, v, phi, variant, len(got), len(want))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no syntactically distinct congruent variants generated")
	}
}

// TestCanonKeyAcrossSchemas pins the cross-schema renaming case behind
// the fragserver e2e test: two definitions that differ only in helper
// names and conjunct order share a canonical key, and their
// neighborhoods agree byte-for-byte.
func TestCanonKeyAcrossSchemas(t *testing.T) {
	helperBody := shape.AndOf(
		shape.Min(1, p("p"), shape.TrueShape()),
		shape.All(p("q"), shape.NodeTestShape(shape.IsLiteral{})),
	)
	h1 := schema.MustNew(
		schema.Definition{Name: iri("S1"), Shape: shape.AndOf(shape.Ref(iri("Helper1")), shape.Value(iri("a"))), Target: shape.Value(iri("a"))},
		schema.Definition{Name: iri("Helper1"), Shape: helperBody},
	)
	h2 := schema.MustNew(
		schema.Definition{Name: iri("S2"), Shape: shape.AndOf(shape.Value(iri("a")), shape.Ref(iri("Helper2"))), Target: shape.Value(iri("a"))},
		schema.Definition{Name: iri("Helper2"), Shape: shape.AndOf(
			shape.All(p("q"), shape.NodeTestShape(shape.IsLiteral{})),
			shape.Min(1, p("p"), shape.TrueShape()),
		)},
	)
	req1 := shape.AndOf(h1.Definitions()[0].Shape, h1.Definitions()[0].Target)
	req2 := shape.AndOf(h2.Definitions()[0].Shape, h2.Definitions()[0].Target)
	if contain.CanonKey(h1, req1) != contain.CanonKey(h2, req2) {
		t.Fatalf("renamed-helper requests must share a canonical key:\n  %s\n  %s",
			contain.CanonKey(h1, req1), contain.CanonKey(h2, req2))
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		g := shapetest.RandomGraph(rng, 25)
		for _, n := range []string{"a", "b", "c"} {
			v := shapetest.IRI(n)
			got := core.Neighborhood(g, h2, v, req2)
			want := core.Neighborhood(g, h1, v, req1)
			if !triplesEqual(got, want) {
				t.Fatalf("graph %d node %s: congruent cross-schema requests disagree", i, v)
			}
		}
	}
}

// TestCanonKeyRejectsNonCongruent pins the counterexample that forces
// the congruence to be stricter than mutual containment: Or(φ) and
// Or(φ, φ∧eq) are mutually contained but trace different bytes, so their
// keys must differ.
func TestCanonKeyRejectsNonCongruent(t *testing.T) {
	a := shape.Min(1, p("p"), shape.TrueShape())
	extra := shape.AndOf(a, shape.EqPath(p("q"), shapetest.Base+"q"))
	or1 := shape.OrOf(a)
	or2 := shape.OrOf(a, extra)

	c := contain.New(nil, nil)
	if c.Equivalent(or1, or2) != contain.Contained {
		t.Skip("checker no longer proves the motivating equivalence")
	}
	if contain.CanonKey(nil, or1) == contain.CanonKey(nil, or2) {
		t.Fatal("mutually-contained but trace-different shapes must not share a key")
	}
}

func triplesEqual(a, b []rdf.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if rdf.CompareTriples(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}
