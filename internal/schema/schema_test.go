package schema_test

import (
	"strings"
	"testing"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
	"shaclfrag/internal/turtle"
)

const base = "http://x/"

func iri(s string) rdf.Term { return rdf.NewIRI(base + s) }

func p(name string) paths.Expr { return paths.P(base + name) }

func mustGraph(t *testing.T, src string) *rdfgraph.Graph {
	t.Helper()
	g, err := turtle.Parse("@prefix ex: <" + base + "> .\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsDuplicates(t *testing.T) {
	d := schema.Definition{Name: iri("S"), Shape: shape.TrueShape(), Target: shape.FalseShape()}
	if _, err := schema.New(d, d); err == nil {
		t.Error("duplicate names must be rejected")
	}
}

func TestNewRejectsRecursion(t *testing.T) {
	s1 := schema.Definition{Name: iri("S1"), Shape: shape.Ref(iri("S2")), Target: shape.FalseShape()}
	s2 := schema.Definition{Name: iri("S2"), Shape: shape.Neg(shape.Ref(iri("S1"))), Target: shape.FalseShape()}
	if _, err := schema.New(s1, s2); err == nil {
		t.Error("mutual recursion must be rejected")
	}
	self := schema.Definition{Name: iri("S"), Shape: shape.Min(1, p("p"), shape.Ref(iri("S"))), Target: shape.FalseShape()}
	if _, err := schema.New(self); err == nil {
		t.Error("self recursion must be rejected")
	}
	// References to undefined shapes are fine (they default to ⊤).
	open := schema.Definition{Name: iri("S"), Shape: shape.Ref(iri("Elsewhere")), Target: shape.FalseShape()}
	if _, err := schema.New(open); err != nil {
		t.Errorf("open reference should be accepted: %v", err)
	}
	// A DAG of references is fine.
	d1 := schema.Definition{Name: iri("A"), Shape: shape.Ref(iri("B")), Target: shape.FalseShape()}
	d2 := schema.Definition{Name: iri("B"), Shape: shape.TrueShape(), Target: shape.FalseShape()}
	if _, err := schema.New(d1, d2); err != nil {
		t.Errorf("DAG should be accepted: %v", err)
	}
}

func TestRecursionErrorReportsFullCycle(t *testing.T) {
	// entry → s1 → s2 → s3 → s1: the error must spell out the cycle in
	// reference order, closed by its first member, without the entry path.
	defs := []schema.Definition{
		{Name: iri("entry"), Shape: shape.Ref(iri("s1")), Target: shape.FalseShape()},
		{Name: iri("s1"), Shape: shape.Ref(iri("s2")), Target: shape.FalseShape()},
		{Name: iri("s2"), Shape: shape.Ref(iri("s3")), Target: shape.FalseShape()},
		{Name: iri("s3"), Shape: shape.Ref(iri("s1")), Target: shape.FalseShape()},
	}
	_, err := schema.New(defs...)
	if err == nil {
		t.Fatal("cycle must be rejected")
	}
	want := "schema: recursive shape definitions: " +
		"<http://x/s1> → <http://x/s2> → <http://x/s3> → <http://x/s1>"
	if err.Error() != want {
		t.Errorf("error = %q\nwant    %q", err, want)
	}
	if strings.Contains(err.Error(), "entry") {
		t.Errorf("error should not include the path into the cycle: %q", err)
	}

	// Self-loop: shortest possible cycle, still closed.
	self := schema.Definition{Name: iri("S"), Shape: shape.Ref(iri("S")), Target: shape.FalseShape()}
	_, err = schema.New(self)
	if err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if want := "schema: recursive shape definitions: <http://x/S> → <http://x/S>"; err.Error() != want {
		t.Errorf("error = %q\nwant    %q", err, want)
	}
}

func TestNewRejectsNilShape(t *testing.T) {
	if _, err := schema.New(schema.Definition{Name: iri("S")}); err == nil {
		t.Error("nil shape expression must be rejected")
	}
}

func TestDefResolution(t *testing.T) {
	s := schema.MustNew(schema.Definition{Name: iri("S"), Shape: shape.TrueShape(), Target: shape.FalseShape()})
	if def, ok := s.Def(iri("S")); !ok || def.String() != "⊤" {
		t.Error("Def must resolve declared names")
	}
	if _, ok := s.Def(iri("Nope")); ok {
		t.Error("Def must not resolve undeclared names")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestTargets(t *testing.T) {
	g := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:p1 rdf:type ex:Paper .
ex:p2 rdf:type ex:ShortPaper .
ex:ShortPaper rdfs:subClassOf ex:Paper .
ex:p1 ex:author ex:alice .
`)
	ev := shape.NewEvaluator(g, nil)
	check := func(target shape.Shape, node string, want bool) {
		t.Helper()
		if got := ev.ConformsTerm(iri(node), target); got != want {
			t.Errorf("target %s at %s = %v, want %v", target, node, got, want)
		}
	}
	check(schema.TargetNode(iri("p1")), "p1", true)
	check(schema.TargetNode(iri("p1")), "p2", false)
	check(schema.TargetClass(iri("Paper")), "p1", true)
	check(schema.TargetClass(iri("Paper")), "p2", true) // via subclass
	check(schema.TargetClass(iri("Paper")), "alice", false)
	check(schema.TargetSubjectsOf(base+"author"), "p1", true)
	check(schema.TargetSubjectsOf(base+"author"), "alice", false)
	check(schema.TargetObjectsOf(base+"author"), "alice", true)
	check(schema.TargetObjectsOf(base+"author"), "p1", false)
}

func TestIsMonotone(t *testing.T) {
	s := schema.MustNew(
		schema.Definition{Name: iri("Mono"), Shape: shape.Min(1, p("p"), shape.TrueShape()), Target: shape.FalseShape()},
		schema.Definition{Name: iri("NonMono"), Shape: shape.Max(1, p("p"), shape.TrueShape()), Target: shape.FalseShape()},
	)
	cases := []struct {
		phi  shape.Shape
		want bool
	}{
		{schema.TargetNode(iri("c")), true},
		{schema.TargetClass(iri("C")), true},
		{schema.TargetSubjectsOf(base + "p"), true},
		{schema.TargetObjectsOf(base + "p"), true},
		{shape.AndOf(schema.TargetNode(iri("c")), shape.Min(2, p("p"), shape.TrueShape())), true},
		{shape.OrOf(schema.TargetNode(iri("c")), schema.TargetClass(iri("C"))), true},
		{shape.Neg(schema.TargetNode(iri("c"))), false},
		{shape.Max(0, p("p"), shape.TrueShape()), false},
		{shape.All(p("p"), shape.TrueShape()), false},
		{shape.EqID(base + "p"), false},
		{shape.Ref(iri("Mono")), true},
		{shape.Ref(iri("NonMono")), false},
		{shape.Ref(iri("Undefined")), true},
		{shape.Min(1, p("p"), shape.Neg(shape.TrueShape())), false},
	}
	for _, c := range cases {
		if got := s.IsMonotone(c.phi); got != c.want {
			t.Errorf("IsMonotone(%s) = %v, want %v", c.phi, got, c.want)
		}
	}
}

func TestValidateExample13(t *testing.T) {
	// Example 1.3: papers must have a student author.
	g := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:good rdf:type ex:Paper ; ex:author ex:bob .
ex:bad rdf:type ex:Paper ; ex:author ex:anne .
ex:bob rdf:type ex:Student .
ex:anne rdf:type ex:Professor .
`)
	workshopShape := shape.Min(1, p("author"),
		shape.Min(1, paths.P(rdf.RDFType), shape.Value(iri("Student"))))
	h := schema.MustNew(schema.Definition{
		Name:   iri("WorkshopShape"),
		Shape:  workshopShape,
		Target: schema.TargetClass(iri("Paper")),
	})
	report := h.Validate(g)
	if report.Conforms {
		t.Error("graph must not conform (bad paper)")
	}
	if report.TargetedNodes != 2 {
		t.Errorf("targeted %d nodes, want 2", report.TargetedNodes)
	}
	v := report.Violations()
	if len(v) != 1 || v[0].Focus != iri("bad") {
		t.Errorf("violations = %+v", v)
	}
	// Remove the offending paper; now it conforms.
	g2 := mustGraph(t, `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:good rdf:type ex:Paper ; ex:author ex:bob .
ex:bob rdf:type ex:Student .
`)
	if !h.Validate(g2).Conforms {
		t.Error("reduced graph must conform")
	}
}

func TestValidateNodeTargetOutsideGraph(t *testing.T) {
	// A node target names a node absent from the data; it trivially matches
	// the target, so its shape is checked (and fails here).
	g := mustGraph(t, `ex:a ex:p ex:b .`)
	h := schema.MustNew(schema.Definition{
		Name:   iri("S"),
		Shape:  shape.Min(1, p("p"), shape.TrueShape()),
		Target: schema.TargetNode(iri("ghost")),
	})
	report := h.Validate(g)
	if report.Conforms {
		t.Error("ghost node has no p-edge, must violate")
	}
	if len(report.Results) != 1 || report.Results[0].Focus != iri("ghost") {
		t.Errorf("results = %+v", report.Results)
	}
}

func TestValidateMultipleDefinitions(t *testing.T) {
	g := mustGraph(t, `
ex:a ex:p ex:b ; ex:q ex:c .
ex:z ex:p ex:b .
`)
	h := schema.MustNew(
		schema.Definition{
			Name:   iri("HasQ"),
			Shape:  shape.Min(1, p("q"), shape.TrueShape()),
			Target: schema.TargetSubjectsOf(base + "p"),
		},
		schema.Definition{
			Name:   iri("Anything"),
			Shape:  shape.TrueShape(),
			Target: schema.TargetSubjectsOf(base + "q"),
		},
	)
	report := h.Validate(g)
	if report.Conforms {
		t.Error("z has no q-edge")
	}
	if got := len(report.Results); got != 3 {
		t.Errorf("results = %d, want 3 (a and z for HasQ, a for Anything)", got)
	}
	var names []string
	for _, r := range report.Results {
		names = append(names, r.ShapeName.Value+"/"+r.Focus.Value)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "HasQ") || !strings.Contains(joined, "Anything") {
		t.Errorf("unexpected results: %v", names)
	}
}

func TestTargetConstants(t *testing.T) {
	tau := shape.OrOf(schema.TargetNode(iri("a")), schema.TargetNode(iri("b")), schema.TargetClass(iri("C")))
	consts := schema.TargetConstants(tau)
	if len(consts) != 3 { // a, b and the class constant C
		t.Errorf("TargetConstants = %v", consts)
	}
}
