// Package schema implements shape schemas (the formalization of SHACL
// shapes graphs): named shape definitions with target expressions,
// nonrecursiveness checking, the four real-SHACL target forms, and graph
// validation with reports.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// Definition is a shape definition (s, φ, τ): a shape name, the shape
// expression constraining targeted nodes, and the target expression
// selecting them.
type Definition struct {
	Name   rdf.Term
	Shape  shape.Shape
	Target shape.Shape
}

// Schema is a finite set of shape definitions with distinct names. Schemas
// are nonrecursive, as in the SHACL recommendation; New rejects cycles.
type Schema struct {
	defs   []Definition
	byName map[rdf.Term]int
}

// New builds a schema, rejecting duplicate names and recursive reference
// cycles through hasShape.
func New(defs ...Definition) (*Schema, error) {
	s := &Schema{byName: make(map[rdf.Term]int, len(defs))}
	for _, d := range defs {
		if d.Shape == nil {
			return nil, fmt.Errorf("schema: definition %s has no shape expression", d.Name)
		}
		if d.Target == nil {
			d.Target = shape.FalseShape() // no target: constrains nothing
		}
		if _, dup := s.byName[d.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate shape name %s", d.Name)
		}
		s.byName[d.Name] = len(s.defs)
		s.defs = append(s.defs, d)
	}
	if cycle := s.findCycle(); cycle != nil {
		parts := make([]string, len(cycle))
		for i, n := range cycle {
			parts[i] = n.String()
		}
		return nil, fmt.Errorf("schema: recursive shape definitions: %s", strings.Join(parts, " → "))
	}
	return s, nil
}

// MustNew is New panicking on error, for tests and examples.
func MustNew(defs ...Definition) *Schema {
	s, err := New(defs...)
	if err != nil {
		panic(err)
	}
	return s
}

// findCycle returns a cycle of shape names if the reference graph
// (s1 → s2 iff hasShape(s2) occurs in the definition of s1, in the shape or
// the target) is cyclic, else nil.
func (s *Schema) findCycle() []rdf.Term {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[rdf.Term]int)
	var stack, cycle []rdf.Term
	var visit func(name rdf.Term) bool
	visit = func(name rdf.Term) bool {
		switch state[name] {
		case inStack:
			// Report exactly the cycle, in reference order and closed by
			// repeating its first member (s1 → s2 → s1) — not the whole
			// path that happened to lead into it.
			for i, n := range stack {
				if n == name {
					cycle = append(append(cycle, stack[i:]...), name)
					break
				}
			}
			return true
		case done:
			return false
		}
		state[name] = inStack
		stack = append(stack, name)
		if i, ok := s.byName[name]; ok {
			refs := shape.ShapeRefs(s.defs[i].Shape)
			refs = append(refs, shape.ShapeRefs(s.defs[i].Target)...)
			for _, ref := range refs {
				if visit(ref) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[name] = done
		return false
	}
	for _, d := range s.defs {
		if visit(d.Name) {
			return cycle
		}
	}
	return nil
}

// Def implements shape.Defs: resolve a shape name to its shape expression.
func (s *Schema) Def(name rdf.Term) (shape.Shape, bool) {
	if i, ok := s.byName[name]; ok {
		return s.defs[i].Shape, true
	}
	return nil, false
}

// Definitions returns the definitions in declaration order. The slice must
// not be modified.
func (s *Schema) Definitions() []Definition { return s.defs }

// Len returns the number of definitions.
func (s *Schema) Len() int { return len(s.defs) }

// The four target forms of real SHACL. All are monotone.

// TargetNode returns the node target hasValue(c).
func TargetNode(c rdf.Term) shape.Shape { return shape.Value(c) }

// TargetClass returns the class-based target
// ≥1 rdf:type/rdfs:subClassOf*.hasValue(c).
func TargetClass(c rdf.Term) shape.Shape {
	return shape.Min(1,
		paths.SeqOf(paths.P(rdf.RDFType), paths.Star{X: paths.P(rdf.RDFSSubClassOf)}),
		shape.Value(c))
}

// TargetSubjectsOf returns the subjects-of target ≥1 p.⊤.
func TargetSubjectsOf(p string) shape.Shape {
	return shape.Min(1, paths.P(p), shape.TrueShape())
}

// TargetObjectsOf returns the objects-of target ≥1 p⁻.⊤.
func TargetObjectsOf(p string) shape.Shape {
	return shape.Min(1, paths.Inv(paths.P(p)), shape.TrueShape())
}

// IsMonotone reports whether φ is syntactically monotone: adding triples to
// a graph can never falsify it. All real-SHACL target forms pass this
// check; Theorem 4.1 (fragment conformance) requires monotone targets.
// hasShape references are resolved through the schema (nonrecursive, so
// this terminates); unresolved references default to ⊤, which is monotone.
func (s *Schema) IsMonotone(phi shape.Shape) bool {
	switch x := phi.(type) {
	case *shape.True, *shape.False, *shape.HasValue, *shape.Test:
		return true
	case *shape.HasShape:
		if def, ok := s.Def(x.Name); ok {
			return s.IsMonotone(def)
		}
		return true
	case *shape.And:
		for _, c := range x.Xs {
			if !s.IsMonotone(c) {
				return false
			}
		}
		return true
	case *shape.Or:
		for _, c := range x.Xs {
			if !s.IsMonotone(c) {
				return false
			}
		}
		return true
	case *shape.MinCount:
		return s.IsMonotone(x.X)
	default:
		// ≤n, ∀, eq, disj, closed, lessThan(Eq), uniqueLang, ¬ are all
		// non-monotone in general.
		return false
	}
}

// TargetConstants returns the hasValue constants occurring in τ. Nodes
// named by node targets must be validated even when they do not occur in
// the data graph, since H, G, c ⊨ hasValue(c) holds for any G.
func TargetConstants(tau shape.Shape) []rdf.Term {
	var out []rdf.Term
	seen := make(map[rdf.Term]struct{})
	shape.Walk(tau, func(sh shape.Shape) {
		if hv, ok := sh.(*shape.HasValue); ok {
			if _, dup := seen[hv.C]; !dup {
				seen[hv.C] = struct{}{}
				out = append(out, hv.C)
			}
		}
	})
	return out
}

// Result records the outcome of checking one targeted focus node against
// one shape definition.
type Result struct {
	ShapeName rdf.Term
	Focus     rdf.Term
	Conforms  bool
}

// Report is the outcome of validating a graph against a schema.
type Report struct {
	// Conforms is true when every targeted node conforms to its shape.
	Conforms bool
	// Results holds one entry per (definition, targeted node) pair, in
	// deterministic order (definition order, then focus term order).
	Results []Result
	// TargetedNodes counts the (definition, node) pairs checked.
	TargetedNodes int
}

// Violations returns the failing results.
func (r *Report) Violations() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Conforms {
			out = append(out, res)
		}
	}
	return out
}

// Validate checks whether g conforms to the schema: for every definition
// (s, φ, τ) and every node a with H, G, a ⊨ τ, it checks H, G, a ⊨ φ.
// Candidate nodes are N(G) plus any node-target constants.
func (s *Schema) Validate(g rdfgraph.Reader) *Report {
	ev := shape.NewEvaluator(g, s)
	return s.ValidateWith(ev)
}

// ValidateWith validates using a caller-supplied evaluator (so callers can
// share evaluation caches or count conformance checks).
func (s *Schema) ValidateWith(ev *shape.Evaluator) *Report {
	g := ev.G
	report := &Report{Conforms: true}
	candidates := g.NodeIDs()
	for _, d := range s.defs {
		nodes := candidates
		for _, c := range TargetConstants(d.Target) {
			id := g.TermID(c)
			if !containsID(nodes, id) {
				nodes = append(append([]rdfgraph.ID(nil), nodes...), id)
			}
		}
		var results []Result
		for _, n := range nodes {
			if !ev.Conforms(n, d.Target) {
				continue
			}
			conforms := ev.Conforms(n, d.Shape)
			results = append(results, Result{ShapeName: d.Name, Focus: g.Term(n), Conforms: conforms})
			if !conforms {
				report.Conforms = false
			}
		}
		sort.Slice(results, func(i, j int) bool {
			return rdf.Compare(results[i].Focus, results[j].Focus) < 0
		})
		report.Results = append(report.Results, results...)
	}
	report.TargetedNodes = len(report.Results)
	return report
}

func containsID(ids []rdfgraph.ID, id rdfgraph.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
