package store

import (
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shape"
)

// WarmDictionary interns every term validation or extraction could need to
// resolve beyond the graph's own nodes — the hasValue constants of shapes
// and targets (node targets name nodes that may not occur in the data).
// Property IRIs need no warming: extraction looks them up read-only. The
// reader must still be mutable, so run this before New freezes the graph,
// or against a Loader's Reader before Finish. A nil schema is a no-op.
func WarmDictionary(g rdfgraph.Reader, h *schema.Schema) {
	if h == nil {
		return
	}
	for _, d := range h.Definitions() {
		WarmShapes(g, d.Shape, d.Target)
	}
}

// WarmShapes interns the hasValue constants of ad-hoc request shapes that
// are not part of a schema — same contract as WarmDictionary.
func WarmShapes(g rdfgraph.Reader, shapes ...shape.Shape) {
	for _, sh := range shapes {
		shape.Walk(sh, func(sub shape.Shape) {
			if hv, ok := sub.(*shape.HasValue); ok {
				g.TermID(hv.C)
			}
		})
	}
}
