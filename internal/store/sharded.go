package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// ShardedGraph is an rdfgraph.Reader over N subject-partitioned shards.
// Every triple lives on exactly one shard — the one owning its subject ID
// (subject % N) — and all shards share one term dictionary, so IDs are
// comparable across shards and with every ID a caller obtained from any
// epoch of the owning store.
//
// Forward reads (Objects, PredicatesFrom, HasIDs) route to the owner
// shard. Reverse reads (Subjects, PredicatesTo) scatter across all shards,
// because the subjects pointing at an object may live anywhere; results
// found on a shard other than the queried node's own are counted as
// cross-shard resolutions. Like Graph, a ShardedGraph is mutable until
// Freeze and safe for any number of concurrent readers afterwards.
type ShardedGraph struct {
	dict   *rdfgraph.Dict
	shards []*rdfgraph.Graph
	frozen bool
	// cross counts reverse-index results resolved from a non-owner shard;
	// shared with the owning Sharded store across epochs (nil until owned).
	cross *atomic.Uint64

	// Frozen-only caches. nodeIDs/shardNodes are computed together on first
	// use; predCache memoizes merged EdgesByPredicate slices.
	nodeOnce   sync.Once
	nodeIDs    []rdfgraph.ID
	shardNodes [][]rdfgraph.ID
	predCache  sync.Map // rdfgraph.ID → []rdfgraph.Edge
}

// NewShardedGraph returns an empty mutable graph of n shards interning
// into d. Like Graph, it has a single-writer construction phase.
func NewShardedGraph(n int, d *rdfgraph.Dict) *ShardedGraph {
	sg := &ShardedGraph{dict: d, shards: make([]*rdfgraph.Graph, n)}
	for i := range sg.shards {
		sg.shards[i] = rdfgraph.NewWithDict(d)
	}
	return sg
}

// shardOf returns the shard owning subject (or node) id.
func (sg *ShardedGraph) shardOf(id rdfgraph.ID) int {
	return int(id) % len(sg.shards)
}

// NumShards returns the shard count.
func (sg *ShardedGraph) NumShards() int { return len(sg.shards) }

// ShardLens returns the per-shard triple counts.
func (sg *ShardedGraph) ShardLens() []int {
	out := make([]int, len(sg.shards))
	for i, sh := range sg.shards {
		out[i] = sh.Len()
	}
	return out
}

// Add interns the triple's terms and inserts it, reporting whether it was
// new. Panics (via Dict.Intern) when a frozen dictionary meets an unseen
// term, exactly like Graph.Add.
func (sg *ShardedGraph) Add(t rdf.Triple) bool {
	s := sg.dict.Intern(t.S)
	p := sg.dict.Intern(t.P)
	o := sg.dict.Intern(t.O)
	return sg.AddIDs(s, p, o)
}

// AddIDs inserts a dictionary-encoded triple into its subject's shard.
func (sg *ShardedGraph) AddIDs(s, p, o rdfgraph.ID) bool {
	return sg.shards[sg.shardOf(s)].AddIDs(s, p, o)
}

// RemoveIDs deletes a dictionary-encoded triple from its subject's shard.
func (sg *ShardedGraph) RemoveIDs(s, p, o rdfgraph.ID) bool {
	return sg.shards[sg.shardOf(s)].RemoveIDs(s, p, o)
}

// Freeze marks every shard and the shared dictionary immutable.
func (sg *ShardedGraph) Freeze() {
	for _, sh := range sg.shards {
		sh.Freeze()
	}
	sg.frozen = true
}

// cloneCOW returns a mutable copy-on-write clone: one dictionary overlay
// shared by all shard clones, so a delta's new terms get exactly one ID no
// matter which shard their triples land in.
func (sg *ShardedGraph) cloneCOW() *ShardedGraph {
	nd := sg.dict.Extend()
	out := &ShardedGraph{
		dict:   nd,
		shards: make([]*rdfgraph.Graph, len(sg.shards)),
		cross:  sg.cross,
	}
	for i, sh := range sg.shards {
		out.shards[i] = sh.CloneCOWWith(nd)
	}
	return out
}

// Dict implements rdfgraph.Reader.
func (sg *ShardedGraph) Dict() *rdfgraph.Dict { return sg.dict }

// Len implements rdfgraph.Reader.
func (sg *ShardedGraph) Len() int {
	n := 0
	for _, sh := range sg.shards {
		n += sh.Len()
	}
	return n
}

// Frozen implements rdfgraph.Reader.
func (sg *ShardedGraph) Frozen() bool { return sg.frozen }

// Term implements rdfgraph.Reader.
func (sg *ShardedGraph) Term(id rdfgraph.ID) rdf.Term { return sg.dict.Term(id) }

// TermID implements rdfgraph.Reader.
func (sg *ShardedGraph) TermID(t rdf.Term) rdfgraph.ID { return sg.dict.Intern(t) }

// LookupTerm implements rdfgraph.Reader.
func (sg *ShardedGraph) LookupTerm(t rdf.Term) rdfgraph.ID { return sg.dict.Lookup(t) }

// Has implements rdfgraph.Reader.
func (sg *ShardedGraph) Has(t rdf.Triple) bool {
	s := sg.dict.Lookup(t.S)
	p := sg.dict.Lookup(t.P)
	o := sg.dict.Lookup(t.O)
	if s == rdfgraph.NoID || p == rdfgraph.NoID || o == rdfgraph.NoID {
		return false
	}
	return sg.HasIDs(s, p, o)
}

// HasIDs implements rdfgraph.Reader: a single owner-shard lookup.
func (sg *ShardedGraph) HasIDs(s, p, o rdfgraph.ID) bool {
	return sg.shards[sg.shardOf(s)].HasIDs(s, p, o)
}

// Objects implements rdfgraph.Reader: a single owner-shard lookup.
func (sg *ShardedGraph) Objects(s, p rdfgraph.ID, fn func(o rdfgraph.ID)) {
	sg.shards[sg.shardOf(s)].Objects(s, p, fn)
}

// Subjects implements rdfgraph.Reader: a scatter over all shards, since
// the subjects pointing at o may live anywhere.
func (sg *ShardedGraph) Subjects(p, o rdfgraph.ID, fn func(s rdfgraph.ID)) {
	home := sg.shardOf(o)
	var cross uint64
	for i, sh := range sg.shards {
		remote := i != home
		sh.Subjects(p, o, func(s rdfgraph.ID) {
			if remote {
				cross++
			}
			fn(s)
		})
	}
	sg.countCross(cross)
}

// PredicatesFrom implements rdfgraph.Reader: a single owner-shard lookup.
func (sg *ShardedGraph) PredicatesFrom(s rdfgraph.ID, fn func(p, o rdfgraph.ID)) {
	sg.shards[sg.shardOf(s)].PredicatesFrom(s, fn)
}

// PredicatesTo implements rdfgraph.Reader: a scatter over all shards.
func (sg *ShardedGraph) PredicatesTo(o rdfgraph.ID, fn func(s, p rdfgraph.ID)) {
	home := sg.shardOf(o)
	var cross uint64
	for i, sh := range sg.shards {
		remote := i != home
		sh.PredicatesTo(o, func(s, p rdfgraph.ID) {
			if remote {
				cross++
			}
			fn(s, p)
		})
	}
	sg.countCross(cross)
}

// countCross batches cross-shard resolutions into the shared counter: one
// atomic add per scatter, not per result.
func (sg *ShardedGraph) countCross(n uint64) {
	if n != 0 && sg.cross != nil {
		sg.cross.Add(n)
	}
}

// EdgesByPredicate implements rdfgraph.Reader, concatenating the per-shard
// edge lists. Merged slices are memoized once the graph is frozen.
func (sg *ShardedGraph) EdgesByPredicate(p rdfgraph.ID) []rdfgraph.Edge {
	if sg.frozen {
		if v, ok := sg.predCache.Load(p); ok {
			return v.([]rdfgraph.Edge)
		}
	}
	var only []rdfgraph.Edge
	n, parts := 0, 0
	for _, sh := range sg.shards {
		if es := sh.EdgesByPredicate(p); len(es) > 0 {
			only = es
			n += len(es)
			parts++
		}
	}
	var out []rdfgraph.Edge
	if parts <= 1 {
		out = only
	} else {
		out = make([]rdfgraph.Edge, 0, n)
		for _, sh := range sg.shards {
			out = append(out, sh.EdgesByPredicate(p)...)
		}
	}
	if sg.frozen {
		sg.predCache.Store(p, out)
	}
	return out
}

// Predicates implements rdfgraph.Reader, deduplicating across shards.
func (sg *ShardedGraph) Predicates(fn func(p rdfgraph.ID)) {
	seen := make(map[rdfgraph.ID]struct{})
	for _, sh := range sg.shards {
		sh.Predicates(func(p rdfgraph.ID) {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				fn(p)
			}
		})
	}
}

// EachTriple implements rdfgraph.Reader.
func (sg *ShardedGraph) EachTriple(fn func(s, p, o rdfgraph.ID)) {
	for _, sh := range sg.shards {
		sh.EachTriple(fn)
	}
}

// Nodes implements rdfgraph.Reader: the union of the shards' node sets.
// A node appears on several shards when it is the object of triples owned
// elsewhere, so deduplication is required.
func (sg *ShardedGraph) Nodes(fn func(n rdfgraph.ID)) {
	seen := make(map[rdfgraph.ID]struct{})
	for _, sh := range sg.shards {
		sh.Nodes(func(n rdfgraph.ID) {
			if _, dup := seen[n]; !dup {
				seen[n] = struct{}{}
				fn(n)
			}
		})
	}
}

// nodeCaches builds the sorted node list and its scatter partition. Only
// meaningful once frozen; mutable graphs compute fresh on every call.
func (sg *ShardedGraph) nodeCaches() ([]rdfgraph.ID, [][]rdfgraph.ID) {
	build := func() ([]rdfgraph.ID, [][]rdfgraph.ID) {
		var ids []rdfgraph.ID
		sg.Nodes(func(n rdfgraph.ID) { ids = append(ids, n) })
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		parts := make([][]rdfgraph.ID, len(sg.shards))
		for _, id := range ids {
			k := sg.shardOf(id)
			parts[k] = append(parts[k], id)
		}
		return ids, parts
	}
	if !sg.frozen {
		return build()
	}
	sg.nodeOnce.Do(func() {
		sg.nodeIDs, sg.shardNodes = build()
	})
	return sg.nodeIDs, sg.shardNodes
}

// NodeIDs implements rdfgraph.Reader. The result is cached once frozen —
// extraction asks for N(G) on every request, and at 10M triples the sort
// alone is too expensive to repeat. The returned slice must not be
// modified.
func (sg *ShardedGraph) NodeIDs() []rdfgraph.ID {
	ids, _ := sg.nodeCaches()
	return ids
}

// ShardNodeIDs returns N(G) partitioned by owner shard (node ID % N), each
// part sorted. core.FragmentParallel detects this method to scatter
// extraction work per shard; the parts are disjoint and their union is
// exactly NodeIDs. The returned slices must not be modified.
func (sg *ShardedGraph) ShardNodeIDs() [][]rdfgraph.ID {
	_, parts := sg.nodeCaches()
	return parts
}

// IsNode implements rdfgraph.Reader. The owner shard sees id whenever it
// is a subject; any shard may see it as an object.
func (sg *ShardedGraph) IsNode(id rdfgraph.ID) bool {
	for _, sh := range sg.shards {
		if sh.IsNode(id) {
			return true
		}
	}
	return false
}

// Triples implements rdfgraph.Reader.
func (sg *ShardedGraph) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, sg.Len())
	sg.EachTriple(func(s, p, o rdfgraph.ID) {
		out = append(out, rdf.Triple{S: sg.dict.Term(s), P: sg.dict.Term(p), O: sg.dict.Term(o)})
	})
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTriples(out[i], out[j]) < 0 })
	return out
}

var _ rdfgraph.Reader = (*ShardedGraph)(nil)

// Sharded is the sharded Store backend: each epoch is a frozen
// ShardedGraph, published with the same copy-on-write discipline as
// rdfgraph.Store — readers never block, writers serialize on a mutex and
// clone every shard against one shared dictionary overlay per epoch.
type Sharded struct {
	mu    sync.Mutex
	cur   atomic.Pointer[shardedSnap]
	cross atomic.Uint64
}

type shardedSnap struct {
	sg    *ShardedGraph
	epoch uint64
}

func (s *shardedSnap) Reader() rdfgraph.Reader { return s.sg }
func (s *shardedSnap) Epoch() uint64           { return s.epoch }

// NewSharded partitions g's triples by subject ID across n shards sharing
// g's dictionary and publishes the result as epoch 1. g itself is frozen
// (if not already) and unchanged.
func NewSharded(g *rdfgraph.Graph, n int) *Sharded {
	g.Freeze()
	sg := NewShardedGraph(n, g.Dict())
	g.EachTriple(func(s, p, o rdfgraph.ID) { sg.AddIDs(s, p, o) })
	return newShardedFrom(sg)
}

// newShardedFrom wraps an already-loaded ShardedGraph as epoch 1.
func newShardedFrom(sg *ShardedGraph) *Sharded {
	sg.Freeze()
	st := &Sharded{}
	sg.cross = &st.cross
	st.cur.Store(&shardedSnap{sg: sg, epoch: 1})
	return st
}

// Current implements Store.
func (st *Sharded) Current() Snapshot { return st.cur.Load() }

// Apply implements Store. The structure mirrors rdfgraph.Store.Apply; the
// essential difference is that the component analysis behind Unaffected is
// built over the edges of *every* shard plus the added edges. Components
// span shard boundaries — a per-shard analysis would let the neighborhood
// cache carry entries for nodes whose component changed on another shard.
func (st *Sharded) Apply(d rdfgraph.Delta) ApplyResult {
	st.mu.Lock()
	defer st.mu.Unlock()

	old := st.cur.Load()
	ng := old.sg.cloneCOW()
	var added, deleted int
	var touched []rdfgraph.ID
	for _, t := range d.Del {
		s := ng.LookupTerm(t.S)
		p := ng.LookupTerm(t.P)
		o := ng.LookupTerm(t.O)
		if s == rdfgraph.NoID || p == rdfgraph.NoID || o == rdfgraph.NoID {
			continue
		}
		if ng.RemoveIDs(s, p, o) {
			deleted++
			touched = append(touched, s, o)
		}
	}
	type addedEdge struct{ s, o rdfgraph.ID }
	var newEdges []addedEdge
	for _, t := range d.Add {
		s := ng.TermID(t.S)
		p := ng.TermID(t.P)
		o := ng.TermID(t.O)
		if ng.AddIDs(s, p, o) {
			added++
			touched = append(touched, s, o)
			newEdges = append(newEdges, addedEdge{s, o})
		}
	}
	if added == 0 && deleted == 0 {
		return ApplyResult{
			Snapshot:   old,
			Prev:       old.epoch,
			Unaffected: func(rdfgraph.ID) bool { return true },
		}
	}

	uf := rdfgraph.NewComponents(ng.Dict().Len())
	old.sg.EachTriple(func(s, _, o rdfgraph.ID) { uf.Union(s, o) })
	for _, e := range newEdges {
		uf.Union(e.s, e.o)
	}
	dirty := uf.DirtySet(touched)

	ng.Freeze()
	snap := &shardedSnap{sg: ng, epoch: old.epoch + 1}
	st.cur.Store(snap)
	return ApplyResult{
		Snapshot:   snap,
		Prev:       old.epoch,
		Added:      added,
		Deleted:    deleted,
		Changed:    true,
		Unaffected: uf.Unaffected(dirty),
	}
}

// Backend implements Store.
func (st *Sharded) Backend() string { return BackendSharded }

// NumShards implements Store.
func (st *Sharded) NumShards() int { return st.cur.Load().sg.NumShards() }

// ShardTriples implements Store.
func (st *Sharded) ShardTriples() []int { return st.cur.Load().sg.ShardLens() }

// CrossShardResolutions implements Store.
func (st *Sharded) CrossShardResolutions() uint64 { return st.cross.Load() }
