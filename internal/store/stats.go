package store

import (
	"shaclfrag/internal/rdfgraph"
)

// CardStats are cardinality statistics sampled from one snapshot. The
// strategy planner (internal/plan) prices extraction strategies with them:
// node and dictionary counts size the dense memo rows of compiled plans,
// and per-predicate cardinalities price the scans a translated SPARQL
// query would perform. Sampling walks the frozen indexes directly —
// predicate posting lists already exist per shard — so it is cheap enough
// to rerun on every published epoch.
type CardStats struct {
	// Epoch is the snapshot the stats describe.
	Epoch uint64
	// Triples and Nodes size the graph; DictTerms is the dictionary length
	// (an upper bound on any node ID, which is what dense rows index by).
	Triples   int
	Nodes     int
	DictTerms int
	// PredCard maps predicate IRI → number of triples with that predicate.
	PredCard map[string]int
}

// Card returns the cardinality of a predicate IRI, 0 when absent.
func (c CardStats) Card(iri string) int { return c.PredCard[iri] }

// MaxPredCard returns the largest predicate cardinality.
func (c CardStats) MaxPredCard() int {
	max := 0
	for _, n := range c.PredCard {
		if n > max {
			max = n
		}
	}
	return max
}

// SampleStats samples cardinality statistics from a snapshot. For the
// sharded backend the per-predicate counts aggregate each shard's posting
// list; the dictionary is shared, so term counts need no merging.
func SampleStats(snap Snapshot) CardStats {
	r := snap.Reader()
	st := CardStats{
		Epoch:    snap.Epoch(),
		Triples:  r.Len(),
		Nodes:    len(r.NodeIDs()),
		PredCard: make(map[string]int),
	}
	st.DictTerms = r.Dict().Len()
	r.Predicates(func(p rdfgraph.ID) {
		t := r.Term(p)
		if t.IsIRI() {
			st.PredCard[t.Value] += len(r.EdgesByPredicate(p))
		}
	})
	return st
}
