// Package store is the pluggable storage tier of the serving stack: it owns
// the sequence of immutable graph epochs a server reads from and the delta
// path that publishes new ones. Two backends implement the same Store
// contract — a thin adapter over the single-graph rdfgraph.Store, and a
// sharded backend that partitions the dictionary-encoded indexes by subject
// ID across N shards (see Sharded). Everything above this package — the
// extractors of internal/core, the HTTP handlers of internal/fragserver,
// the CLI — speaks Store and rdfgraph.Reader and cannot tell the backends
// apart except by throughput.
package store

import (
	"fmt"

	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
)

// Backend names accepted by Config.Backend and reported by Store.Backend.
const (
	BackendSingle  = "single"
	BackendSharded = "sharded"
)

// Config selects and sizes a backend.
type Config struct {
	// Backend is BackendSingle (default when empty) or BackendSharded.
	Backend string
	// Shards is the shard count for the sharded backend; 0 means
	// DefaultShards. The single backend ignores it.
	Shards int
}

// DefaultShards is the shard count used when Config.Shards is 0.
const DefaultShards = 4

func (c Config) normalize() (Config, error) {
	switch c.Backend {
	case "", BackendSingle:
		c.Backend = BackendSingle
		c.Shards = 1
	case BackendSharded:
		if c.Shards == 0 {
			c.Shards = DefaultShards
		}
		if c.Shards < 1 {
			return c, fmt.Errorf("store: shard count %d < 1", c.Shards)
		}
	default:
		return c, fmt.Errorf("store: unknown backend %q (want %q or %q)", c.Backend, BackendSingle, BackendSharded)
	}
	return c, nil
}

// Snapshot is one immutable epoch of a Store. Epochs start at 1 and
// increase by one per effective update; the Reader is frozen and safe for
// any number of concurrent readers for as long as the caller retains it.
type Snapshot interface {
	// Reader is the read surface of this epoch.
	Reader() rdfgraph.Reader
	// Epoch returns the epoch number.
	Epoch() uint64
}

// ApplyResult reports what an Apply did. It mirrors rdfgraph.ApplyResult;
// see that type for the precise Unaffected contract (component analysis
// over the union of the previous epoch's edges and the added edges — for
// the sharded backend the components are built globally across all shards,
// never per shard, because a neighborhood freely spans shard boundaries)
// and the Prev contract (the epoch the delta was applied against, read
// under the apply lock — the only sound key for carrying caches across
// the update; an epoch read before Apply can be stale under racing
// writers).
type ApplyResult struct {
	Snapshot       Snapshot
	Prev           uint64
	Added, Deleted int
	Changed        bool
	Unaffected     func(rdfgraph.ID) bool
}

// AffectedNodes filters nodes down to those the delta's components touch —
// the worklist incremental re-extraction runs over. See
// rdfgraph.ApplyResult.AffectedNodes.
func (res ApplyResult) AffectedNodes(nodes []rdfgraph.ID) []rdfgraph.ID {
	if !res.Changed {
		return nil
	}
	var out []rdfgraph.ID
	for _, id := range nodes {
		if !res.Unaffected(id) {
			out = append(out, id)
		}
	}
	return out
}

// Store owns a sequence of immutable graph snapshots and publishes new
// epochs atomically: readers call Current and use that snapshot for the
// whole request without ever blocking on writers; writers are serialized
// internally and publish copy-on-write epochs.
type Store interface {
	// Current returns the latest published snapshot.
	Current() Snapshot
	// Apply builds and publishes the next epoch from the current one.
	Apply(d rdfgraph.Delta) ApplyResult
	// Backend returns the backend name (BackendSingle or BackendSharded).
	Backend() string
	// NumShards returns the shard count (1 for the single backend).
	NumShards() int
	// ShardTriples returns the per-shard triple counts of the current
	// epoch; the single backend reports one entry.
	ShardTriples() []int
	// CrossShardResolutions returns the cumulative count of reverse-index
	// results resolved from a shard other than the queried node's own.
	// Always 0 for the single backend.
	CrossShardResolutions() uint64
}

// New wraps an already-built graph in the configured backend, freezing it
// as epoch 1. The sharded backend re-partitions g's triples by subject ID
// while sharing g's dictionary, so IDs held by callers stay valid.
func New(g *rdfgraph.Graph, cfg Config) (Store, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Backend == BackendSingle {
		return NewSingle(g), nil
	}
	return NewSharded(g, cfg.Shards), nil
}

// Loader streams triples into a backend without materializing the full
// triple slice: each Add interns the terms and updates the indexes in
// place, so peak memory is the final index size, not indexes plus a
// []rdf.Triple copy of the input. This is what lets a 10M-triple datagen
// graph load within bounded memory.
type Loader struct {
	cfg Config
	g   *rdfgraph.Graph // single backend
	sg  *ShardedGraph   // sharded backend
}

// NewLoader returns an empty loader for the configured backend.
func NewLoader(cfg Config) (*Loader, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	l := &Loader{cfg: cfg}
	if cfg.Backend == BackendSingle {
		l.g = rdfgraph.New()
	} else {
		l.sg = NewShardedGraph(cfg.Shards, rdfgraph.NewDict())
	}
	return l, nil
}

// Add inserts one triple, reporting whether it was new.
func (l *Loader) Add(t rdf.Triple) bool {
	if l.g != nil {
		return l.g.Add(t)
	}
	return l.sg.Add(t)
}

// Len returns the number of triples loaded so far.
func (l *Loader) Len() int {
	if l.g != nil {
		return l.g.Len()
	}
	return l.sg.Len()
}

// Reader exposes the graph under construction. It must not be used
// concurrently with Add; after Finish it is the epoch-1 read surface.
func (l *Loader) Reader() rdfgraph.Reader {
	if l.g != nil {
		return l.g
	}
	return l.sg
}

// Finish freezes the loaded graph and wraps it as epoch 1 of a Store.
func (l *Loader) Finish() Store {
	if l.g != nil {
		return NewSingle(l.g)
	}
	return newShardedFrom(l.sg)
}
