package store_test

import (
	"fmt"
	"sort"
	"testing"

	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/store"
	"shaclfrag/internal/turtle"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func exTriple(s, p, o string) rdf.Triple {
	return rdf.Triple{S: ex(s), P: ex(p), O: ex(o)}
}

func TestConfigValidation(t *testing.T) {
	if _, err := store.New(rdfgraph.New(), store.Config{Backend: "quantum"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := store.New(rdfgraph.New(), store.Config{Backend: store.BackendSharded, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	st, err := store.New(rdfgraph.New(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend() != store.BackendSingle || st.NumShards() != 1 {
		t.Fatalf("empty config = (%s, %d), want (single, 1)", st.Backend(), st.NumShards())
	}
	st, err = store.New(rdfgraph.New(), store.Config{Backend: store.BackendSharded})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != store.DefaultShards {
		t.Fatalf("default shards = %d, want %d", st.NumShards(), store.DefaultShards)
	}
}

// testGraph returns a modest synthetic graph exercising every index shape:
// forward fans, reverse fans, literals, and multi-component topology.
func testGraph(t *testing.T) *rdfgraph.Graph {
	t.Helper()
	return datagen.Tyrol(datagen.TyrolConfig{Individuals: 400, Seed: 7})
}

// TestShardedReaderParity checks every Reader method of the sharded graph
// against the single graph it was partitioned from.
func TestShardedReaderParity(t *testing.T) {
	g := testGraph(t)
	want := turtle.FormatNTriples(g.Triples())
	for _, n := range []int{1, 2, 3, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			st, err := store.New(g, store.Config{Backend: store.BackendSharded, Shards: n})
			if err != nil {
				t.Fatal(err)
			}
			r := st.Current().Reader()
			if got := turtle.FormatNTriples(r.Triples()); got != want {
				t.Fatal("Triples() differs from the single graph")
			}
			if r.Len() != g.Len() {
				t.Fatalf("Len = %d, want %d", r.Len(), g.Len())
			}
			sum := 0
			for _, c := range st.ShardTriples() {
				sum += c
			}
			if sum != g.Len() {
				t.Fatalf("ShardTriples sums to %d, want %d", sum, g.Len())
			}
			if len(st.ShardTriples()) != n {
				t.Fatalf("len(ShardTriples) = %d, want %d", len(st.ShardTriples()), n)
			}

			gn, rn := g.NodeIDs(), r.NodeIDs()
			if len(gn) != len(rn) {
				t.Fatalf("NodeIDs length %d, want %d", len(rn), len(gn))
			}
			for i := range gn {
				if gn[i] != rn[i] {
					t.Fatalf("NodeIDs[%d] = %d, want %d", i, rn[i], gn[i])
				}
			}
			if sr, ok := r.(interface{ ShardNodeIDs() [][]rdfgraph.ID }); ok {
				var union []rdfgraph.ID
				for k, part := range sr.ShardNodeIDs() {
					for _, id := range part {
						if int(id)%n != k {
							t.Fatalf("node %d in part %d, want %d", id, k, int(id)%n)
						}
					}
					union = append(union, part...)
				}
				sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
				if len(union) != len(gn) {
					t.Fatalf("ShardNodeIDs union has %d nodes, want %d", len(union), len(gn))
				}
				for i := range gn {
					if union[i] != gn[i] {
						t.Fatalf("ShardNodeIDs union[%d] = %d, want %d", i, union[i], gn[i])
					}
				}
			} else {
				t.Fatal("sharded reader does not expose ShardNodeIDs")
			}

			// Per-node forward and reverse reads, across the whole node set.
			collect2 := func(scan func(func(a, b rdfgraph.ID))) [][2]rdfgraph.ID {
				var out [][2]rdfgraph.ID
				scan(func(a, b rdfgraph.ID) { out = append(out, [2]rdfgraph.ID{a, b}) })
				sort.Slice(out, func(i, j int) bool {
					if out[i][0] != out[j][0] {
						return out[i][0] < out[j][0]
					}
					return out[i][1] < out[j][1]
				})
				return out
			}
			for _, v := range gn {
				gf := collect2(func(fn func(a, b rdfgraph.ID)) { g.PredicatesFrom(v, fn) })
				rf := collect2(func(fn func(a, b rdfgraph.ID)) { r.PredicatesFrom(v, fn) })
				gt := collect2(func(fn func(a, b rdfgraph.ID)) { g.PredicatesTo(v, fn) })
				rt := collect2(func(fn func(a, b rdfgraph.ID)) { r.PredicatesTo(v, fn) })
				if fmt.Sprint(gf) != fmt.Sprint(rf) {
					t.Fatalf("PredicatesFrom(%d) differs", v)
				}
				if fmt.Sprint(gt) != fmt.Sprint(rt) {
					t.Fatalf("PredicatesTo(%d) differs", v)
				}
				if g.IsNode(v) != r.IsNode(v) {
					t.Fatalf("IsNode(%d) differs", v)
				}
			}

			// Per-predicate edge lists agree as sets (shard concatenation
			// may reorder them).
			g.Predicates(func(p rdfgraph.ID) {
				ge, re := g.EdgesByPredicate(p), r.EdgesByPredicate(p)
				if len(ge) != len(re) {
					t.Fatalf("EdgesByPredicate(%d): %d edges, want %d", p, len(re), len(ge))
				}
				set := make(map[rdfgraph.Edge]struct{}, len(ge))
				for _, e := range ge {
					set[e] = struct{}{}
				}
				for _, e := range re {
					if _, ok := set[e]; !ok {
						t.Fatalf("EdgesByPredicate(%d): unexpected edge %v", p, e)
					}
				}
				for _, e := range ge {
					if !r.HasIDs(e.S, p, e.O) {
						t.Fatalf("HasIDs(%d,%d,%d) = false", e.S, p, e.O)
					}
				}
			})
		})
	}
}

// TestLoaderMatchesBulk checks the streaming loader ends at the same graph
// as bulk construction plus repartitioning, for both backends.
func TestLoaderMatchesBulk(t *testing.T) {
	cfg := datagen.TyrolConfig{Individuals: 300, Seed: 3}
	want := turtle.FormatNTriples(datagen.Tyrol(cfg).Triples())
	for _, scfg := range []store.Config{
		{Backend: store.BackendSingle},
		{Backend: store.BackendSharded, Shards: 3},
	} {
		loader, err := store.NewLoader(scfg)
		if err != nil {
			t.Fatal(err)
		}
		datagen.TyrolStream(cfg, func(tr rdf.Triple) { loader.Add(tr) })
		st := loader.Finish()
		if got := turtle.FormatNTriples(st.Current().Reader().Triples()); got != want {
			t.Fatalf("%s loader output differs from bulk construction", scfg.Backend)
		}
		if st.Current().Epoch() != 1 {
			t.Fatalf("fresh store epoch = %d, want 1", st.Current().Epoch())
		}
	}
}

// TestApplyParity applies the same delta sequence to both backends and
// checks they publish identical graphs and epochs.
func TestApplyParity(t *testing.T) {
	base := []rdf.Triple{
		exTriple("a", "p", "b"),
		exTriple("c", "p", "d"),
		exTriple("e", "q", "f"),
	}
	deltas := []rdfgraph.Delta{
		{Add: []rdf.Triple{exTriple("a", "p", "x"), exTriple("x", "p", "y")}},
		{Del: []rdf.Triple{exTriple("c", "p", "d")}},
		{Add: []rdf.Triple{exTriple("c", "p", "d")}, Del: []rdf.Triple{exTriple("e", "q", "f")}},
		{Del: []rdf.Triple{exTriple("nope", "p", "gone")}}, // no-op
	}
	single, err := store.New(rdfgraph.FromTriples(base), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := store.New(rdfgraph.FromTriples(base), store.Config{Backend: store.BackendSharded, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		rs := single.Apply(d)
		rh := sharded.Apply(d)
		if rs.Changed != rh.Changed || rs.Added != rh.Added || rs.Deleted != rh.Deleted {
			t.Fatalf("delta %d: single (%v,%d,%d) vs sharded (%v,%d,%d)",
				i, rs.Changed, rs.Added, rs.Deleted, rh.Changed, rh.Added, rh.Deleted)
		}
		if rs.Snapshot.Epoch() != rh.Snapshot.Epoch() {
			t.Fatalf("delta %d: epochs %d vs %d", i, rs.Snapshot.Epoch(), rh.Snapshot.Epoch())
		}
		a := turtle.FormatNTriples(rs.Snapshot.Reader().Triples())
		b := turtle.FormatNTriples(rh.Snapshot.Reader().Triples())
		if a != b {
			t.Fatalf("delta %d: published graphs differ", i)
		}
	}
	if got := sharded.Current().Epoch(); got != 4 {
		t.Fatalf("final epoch = %d, want 4 (three effective deltas on epoch 1)", got)
	}
}

// TestUnaffectedSpansShards checks the component analysis behind
// Unaffected is global: b's component is dirtied by an update to a even
// when a and b live on different shards, while the untouched {c,d}
// component stays carryable.
func TestUnaffectedSpansShards(t *testing.T) {
	g := rdfgraph.FromTriples([]rdf.Triple{
		exTriple("a", "p", "b"),
		exTriple("c", "p", "d"),
	})
	for _, n := range []int{2, 3, 5} {
		st, err := store.New(g, store.Config{Backend: store.BackendSharded, Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		res := st.Apply(rdfgraph.Delta{Add: []rdf.Triple{exTriple("a", "p", "z")}})
		if !res.Changed {
			t.Fatal("effective delta reported unchanged")
		}
		r := res.Snapshot.Reader()
		for name, wantUnaffected := range map[string]bool{
			"a": false, "b": false, "z": false,
			"c": true, "d": true,
		} {
			id := r.LookupTerm(ex(name))
			if id == rdfgraph.NoID {
				t.Fatalf("%s not in dictionary", name)
			}
			if got := res.Unaffected(id); got != wantUnaffected {
				t.Errorf("shards=%d: Unaffected(%s) = %v, want %v", n, name, got, wantUnaffected)
			}
		}
	}
}

// TestCrossShardResolutions checks the counter advances exactly when a
// reverse read resolves results away from the queried node's home shard.
func TestCrossShardResolutions(t *testing.T) {
	st, err := store.New(testGraph(t), store.Config{Backend: store.BackendSharded, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.CrossShardResolutions(); got != 0 {
		t.Fatalf("fresh store counter = %d, want 0", got)
	}
	// Reverse-read every node: in a 400-individual tourism graph the
	// subjects pointing at shared hubs (places, orgs) are certain to span
	// both shards for some object.
	r := st.Current().Reader()
	for _, v := range r.NodeIDs() {
		r.PredicatesTo(v, func(s, p rdfgraph.ID) {})
	}
	if got := st.CrossShardResolutions(); got == 0 {
		t.Fatal("cross-shard counter did not advance after scattered reverse reads")
	}
	single, err := store.New(testGraph(t), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.CrossShardResolutions(); got != 0 {
		t.Fatalf("single backend counter = %d, want 0", got)
	}
}
