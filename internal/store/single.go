package store

import "shaclfrag/internal/rdfgraph"

// Single adapts the one-graph rdfgraph.Store to the Store interface. It is
// the default backend: all triples in one Graph, epochs published by
// rdfgraph.Store's copy-on-write Apply.
type Single struct {
	st *rdfgraph.Store
}

// NewSingle wraps g as epoch 1, freezing it if needed.
func NewSingle(g *rdfgraph.Graph) *Single {
	return &Single{st: rdfgraph.NewStore(g)}
}

// singleSnap wraps an rdfgraph.Snapshot as a store.Snapshot.
type singleSnap struct {
	s *rdfgraph.Snapshot
}

func (s singleSnap) Reader() rdfgraph.Reader { return s.s.Graph() }
func (s singleSnap) Epoch() uint64           { return s.s.Epoch() }

// Current implements Store.
func (st *Single) Current() Snapshot { return singleSnap{st.st.Current()} }

// Apply implements Store.
func (st *Single) Apply(d rdfgraph.Delta) ApplyResult {
	res := st.st.Apply(d)
	return ApplyResult{
		Snapshot:   singleSnap{res.Snapshot},
		Prev:       res.Prev,
		Added:      res.Added,
		Deleted:    res.Deleted,
		Changed:    res.Changed,
		Unaffected: res.Unaffected,
	}
}

// Backend implements Store.
func (st *Single) Backend() string { return BackendSingle }

// NumShards implements Store.
func (st *Single) NumShards() int { return 1 }

// ShardTriples implements Store.
func (st *Single) ShardTriples() []int {
	return []int{st.st.Current().Graph().Len()}
}

// CrossShardResolutions implements Store.
func (st *Single) CrossShardResolutions() uint64 { return 0 }
