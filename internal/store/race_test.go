package store_test

import (
	"sync"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/store"
	"shaclfrag/internal/turtle"
)

// TestConcurrentScatterGather hammers one frozen sharded epoch with
// concurrent scatter-gather extractions. Under -race this exercises the
// lazily built node caches (nodeOnce), the memoized per-predicate edge
// slices (predCache) and the batched cross-shard counter, all racing on
// first use.
func TestConcurrentScatterGather(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 300, Seed: 2})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	store.WarmDictionary(g, h)
	want := turtle.FormatNTriples(core.FragmentSchema(g, h))

	st, err := store.New(g, store.Config{Backend: store.BackendSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	requests := core.SchemaRequests(h)
	r := st.Current().Reader()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := core.NewExtractor(r, h)
			frag, err := x.FragmentParallel(requests, core.ParallelOptions{Workers: 2})
			if err != nil {
				errs <- err.Error()
				return
			}
			if got := turtle.FormatNTriples(frag); got != want {
				errs <- "concurrent fragment differs from serial extraction"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentApplyAndExtract races a writer publishing epochs against
// readers extracting from whatever snapshot they pinned — the live-update
// serving pattern. Every reader must see an internally consistent frozen
// epoch; the race detector checks the copy-on-write plumbing.
func TestConcurrentApplyAndExtract(t *testing.T) {
	g := datagen.Tyrol(datagen.TyrolConfig{Individuals: 150, Seed: 4})
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	store.WarmDictionary(g, h)
	st, err := store.New(g, store.Config{Backend: store.BackendSharded, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	requests := core.SchemaRequests(h)

	const (
		readers = 4
		rounds  = 6
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Current()
				x := core.NewExtractor(snap.Reader(), h)
				if _, err := x.FragmentParallel(requests, core.ParallelOptions{Workers: 2, Epoch: snap.Epoch()}); err != nil {
					errs <- err.Error()
					return
				}
			}
		}()
	}
	base := ex("upd")
	for i := 0; i < rounds; i++ {
		d := rdfgraph.Delta{Add: []rdf.Triple{{
			S: base, P: ex("p"), O: rdf.NewInteger(int64(i)),
		}}}
		res := st.Apply(d)
		if !res.Changed {
			t.Errorf("round %d: effective delta reported unchanged", i)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got, want := st.Current().Epoch(), uint64(1+rounds); got != want {
		t.Fatalf("final epoch = %d, want %d", got, want)
	}
}
