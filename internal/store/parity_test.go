package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/shaclsyn"
	"shaclfrag/internal/store"
	"shaclfrag/internal/turtle"
)

// parityCase is one (data graph, schema) pair whose whole-schema fragment
// must come out byte-identical from every backend and scheduling path.
type parityCase struct {
	name string
	g    *rdfgraph.Graph
	h    *schema.Schema
}

// exampleParityCases loads every schema under examples/shapes against the
// example tourism data, plus a synthetic graph under the benchmark shapes.
func exampleParityCases(t *testing.T) []parityCase {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "data", "tourism.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	shapeFiles, err := filepath.Glob(filepath.Join("..", "..", "examples", "shapes", "*.ttl"))
	if err != nil || len(shapeFiles) == 0 {
		t.Fatalf("no example schemas found: %v", err)
	}
	var cases []parityCase
	for _, sf := range shapeFiles {
		src, err := os.ReadFile(sf)
		if err != nil {
			t.Fatal(err)
		}
		h, err := shaclsyn.ParseSchema(string(src))
		if err != nil {
			t.Fatalf("%s: %v", sf, err)
		}
		g, err := turtle.Parse(string(data))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, parityCase{name: filepath.Base(sf), g: g, h: h})
	}
	bench := schema.MustNew(datagen.BenchmarkShapes()...)
	cases = append(cases, parityCase{
		name: "datagen",
		g:    datagen.Tyrol(datagen.TyrolConfig{Individuals: 250, Seed: 11}),
		h:    bench,
	})
	return cases
}

// TestShardedFragmentParity is the acceptance gate for the sharded
// backend: Frag(G, H) computed through every shard count and scheduling
// path is byte-identical to the serial single-graph extraction, for every
// example schema shipped in the repo.
func TestShardedFragmentParity(t *testing.T) {
	for _, tc := range exampleParityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			store.WarmDictionary(tc.g, tc.h)
			want := turtle.FormatNTriples(core.FragmentSchema(tc.g, tc.h))
			requests := core.SchemaRequests(tc.h)
			for _, shards := range []int{1, 2, 4, 16} {
				st, err := store.New(tc.g, store.Config{Backend: store.BackendSharded, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4} {
					x := core.NewExtractor(st.Current().Reader(), tc.h)
					frag, err := x.FragmentParallel(requests, core.ParallelOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if got := turtle.FormatNTriples(frag); got != want {
						t.Fatalf("shards=%d workers=%d: fragment differs from single serial extraction (%d vs %d bytes)",
							shards, workers, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestShardedParityAfterUpdate re-checks byte parity on a post-update
// epoch: both backends apply the same delta and their fragments of the new
// epoch must again agree byte for byte.
func TestShardedParityAfterUpdate(t *testing.T) {
	cfg := datagen.TyrolConfig{Individuals: 200, Seed: 5}
	h := schema.MustNew(datagen.BenchmarkShapes()...)
	delta := rdfgraph.Delta{
		Add: datagen.Tyrol(datagen.TyrolConfig{Individuals: 40, Seed: 99}).Triples()[:100],
		Del: datagen.Tyrol(cfg).Triples()[:50],
	}

	gs := datagen.Tyrol(cfg)
	store.WarmDictionary(gs, h)
	single, err := store.New(gs, store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gh := datagen.Tyrol(cfg)
	store.WarmDictionary(gh, h)
	sharded, err := store.New(gh, store.Config{Backend: store.BackendSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	rs := single.Apply(delta)
	rh := sharded.Apply(delta)
	if rs.Snapshot.Epoch() != rh.Snapshot.Epoch() {
		t.Fatalf("epochs diverged: %d vs %d", rs.Snapshot.Epoch(), rh.Snapshot.Epoch())
	}
	requests := core.SchemaRequests(h)
	frag := func(r rdfgraph.Reader) string {
		x := core.NewExtractor(r, h)
		ts, err := x.FragmentParallel(requests, core.ParallelOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return turtle.FormatNTriples(ts)
	}
	a, b := frag(rs.Snapshot.Reader()), frag(rh.Snapshot.Reader())
	if a != b {
		t.Fatalf("post-update fragments differ (%d vs %d bytes)", len(a), len(b))
	}
}
