package store_test

import (
	"os"
	"runtime"
	"testing"

	"shaclfrag/internal/core"
	"shaclfrag/internal/datagen"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/schema"
	"shaclfrag/internal/store"
)

// TestLoaderScale is the bounded-memory load smoke test: stream a sized
// synthetic graph into the sharded backend, then prove the result serves —
// a whole-graph extraction of one cheap request shape. Scale is 1M triples
// by default, 100K under -short, and the full 10M-triple acceptance run
// when SHACLFRAG_SCALE_10M=1 is set (scripts/check.sh runs the default;
// the 10M run backs the committed benchmark numbers).
func TestLoaderScale(t *testing.T) {
	target := 1_000_000
	if os.Getenv("SHACLFRAG_SCALE_10M") == "1" {
		target = 10_000_000
	} else if testing.Short() {
		target = 100_000
	}

	defs := datagen.BenchmarkShapes()[:1]
	h := schema.MustNew(defs...)
	loader, err := store.NewLoader(store.Config{Backend: store.BackendSharded, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	individuals := datagen.IndividualsForTriples(target)
	datagen.TyrolStream(datagen.TyrolConfig{Individuals: individuals, Seed: 1},
		func(tr rdf.Triple) { loader.Add(tr) })
	store.WarmDictionary(loader.Reader(), h)
	st := loader.Finish()

	got := st.Current().Reader().Len()
	if low, high := target*97/100, target*103/100; got < low || got > high {
		t.Fatalf("loaded %d triples for a %d target (outside ±3%%); recalibrate datagen.TriplesPerIndividual", got, target)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("loaded %d triples across %v shard sizes, %d MiB heap in use",
		got, st.ShardTriples(), ms.HeapInuse>>20)

	x := core.NewExtractor(st.Current().Reader(), h)
	frag, err := x.FragmentParallel(core.SchemaRequests(h), core.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(frag) == 0 {
		t.Fatal("schema fragment of the loaded graph is empty")
	}
	t.Logf("extracted %d fragment triples for %q", len(frag), defs[0].Name)
}

// TestLoaderScaleRejectsFrozenInterning guards the WarmDictionary
// contract: warming must happen against the loader's reader before Finish
// freezes the dictionary, and extraction of a shape whose constants were
// never warmed must not be reachable without a panic we can document.
func TestLoaderScaleRejectsFrozenInterning(t *testing.T) {
	loader, err := store.NewLoader(store.Config{Backend: store.BackendSharded, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	loader.Add(rdf.Triple{S: ex("s"), P: ex("p"), O: ex("o")})
	st := loader.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("interning a new term into a frozen store did not panic")
		}
	}()
	st.Current().Reader().TermID(ex("never-seen"))
}
