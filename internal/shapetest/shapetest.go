// Package shapetest provides random generators for graphs and shapes, used
// by property-based tests across the repository (NNF preservation,
// sufficiency, SPARQL-translation equivalence).
package shapetest

import (
	"math/rand"

	"shaclfrag/internal/paths"
	"shaclfrag/internal/rdf"
	"shaclfrag/internal/rdfgraph"
	"shaclfrag/internal/shape"
)

// Base is the IRI namespace used by generated graphs and shapes.
const Base = "http://test/"

// IRI returns an IRI in the test namespace.
func IRI(local string) rdf.Term { return rdf.NewIRI(Base + local) }

var nodeNames = []string{"a", "b", "c", "d", "e", "f"}
var propNames = []string{"p", "q", "r"}

// RandomTerm generates a random term across all three kinds. The universe
// is deliberately tiny so that collisions — equal values with different
// kinds, datatypes or language tags — are likely, which is where ordering
// and equality edge cases live.
func RandomTerm(rng *rand.Rand) rdf.Term {
	v := nodeNames[rng.Intn(3)]
	switch rng.Intn(6) {
	case 0:
		return IRI(nodeNames[rng.Intn(len(nodeNames))])
	case 1:
		return rdf.NewBlank(v)
	case 2:
		return rdf.NewString(v)
	case 3:
		return rdf.NewLangString(v, []string{"en", "nl", "en-us"}[rng.Intn(3)])
	case 4:
		return rdf.NewInteger(int64(rng.Intn(3)))
	default:
		return rdf.NewTypedLiteral(v,
			[]string{rdf.XSDDecimal, rdf.XSDBoolean, rdf.XSDString}[rng.Intn(3)])
	}
}

// RandomGraph generates a graph with roughly the given number of edges over
// a small universe of nodes and properties, mixing in literal objects with
// and without language tags so that uniqueLang/lessThan shapes are
// exercised.
func RandomGraph(rng *rand.Rand, edges int) *rdfgraph.Graph {
	g := rdfgraph.New()
	for i := 0; i < edges; i++ {
		s := IRI(nodeNames[rng.Intn(len(nodeNames))])
		p := IRI(propNames[rng.Intn(len(propNames))])
		var o rdf.Term
		switch rng.Intn(10) {
		case 0:
			o = rdf.NewInteger(int64(rng.Intn(5)))
		case 1:
			o = rdf.NewLangString("w"+nodeNames[rng.Intn(3)], []string{"en", "nl"}[rng.Intn(2)])
		case 2:
			o = rdf.NewString(nodeNames[rng.Intn(3)])
		default:
			o = IRI(nodeNames[rng.Intn(len(nodeNames))])
		}
		g.Add(rdf.T(s, p, o))
	}
	return g
}

// RandomPath generates a random path expression of bounded depth.
func RandomPath(rng *rand.Rand, depth int) paths.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return paths.P(Base + propNames[rng.Intn(len(propNames))])
	}
	switch rng.Intn(5) {
	case 0:
		return paths.Inv(RandomPath(rng, depth-1))
	case 1:
		return paths.Seq{Left: RandomPath(rng, depth-1), Right: RandomPath(rng, depth-1)}
	case 2:
		return paths.Alt{Left: RandomPath(rng, depth-1), Right: RandomPath(rng, depth-1)}
	case 3:
		return paths.Star{X: RandomPath(rng, depth-1)}
	default:
		return paths.ZeroOrOne{X: RandomPath(rng, depth-1)}
	}
}

// RandomShape generates a random shape of bounded depth covering every
// construct of the grammar, including negation (so NNF rewriting is
// meaningfully exercised).
func RandomShape(rng *rand.Rand, depth int) shape.Shape {
	if depth <= 0 {
		return randomAtom(rng)
	}
	switch rng.Intn(8) {
	case 0:
		return shape.Neg(RandomShape(rng, depth-1))
	case 1:
		return shape.AndOf(RandomShape(rng, depth-1), RandomShape(rng, depth-1))
	case 2:
		return shape.OrOf(RandomShape(rng, depth-1), RandomShape(rng, depth-1))
	case 3:
		return shape.Min(rng.Intn(3), RandomPath(rng, 2), RandomShape(rng, depth-1))
	case 4:
		return shape.Max(rng.Intn(3), RandomPath(rng, 2), RandomShape(rng, depth-1))
	case 5:
		return shape.All(RandomPath(rng, 2), RandomShape(rng, depth-1))
	default:
		return randomAtom(rng)
	}
}

func randomAtom(rng *rand.Rand) shape.Shape {
	p := Base + propNames[rng.Intn(len(propNames))]
	switch rng.Intn(14) {
	case 12:
		return shape.More(paths.P(p), Base+propNames[rng.Intn(len(propNames))])
	case 13:
		return shape.MoreEq(paths.P(p), Base+propNames[rng.Intn(len(propNames))])
	case 0:
		return shape.TrueShape()
	case 1:
		return shape.FalseShape()
	case 2:
		return shape.Value(IRI(nodeNames[rng.Intn(len(nodeNames))]))
	case 3:
		return shape.NodeTestShape(shape.IsIRI{})
	case 4:
		return shape.NodeTestShape(shape.IsLiteral{})
	case 5:
		return shape.EqPath(RandomPath(rng, 1), p)
	case 6:
		return shape.EqID(p)
	case 7:
		return shape.DisjPath(RandomPath(rng, 1), p)
	case 8:
		return shape.DisjID(p)
	case 9:
		return shape.ClosedShape(Base+"p", Base+"q")
	case 10:
		return shape.UniqueLangShape(paths.P(p))
	default:
		return shape.Less(paths.P(p), Base+propNames[rng.Intn(len(propNames))])
	}
}
