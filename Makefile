GO ?= go

.PHONY: build test race vet bench bench-json bench-json-smoke bench-live bench-sharded bench-sharded-10m check clean cover docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The rdfgraph, core and obs suites include concurrency tests written for
# the race detector; this is the target that gives them teeth.
race:
	$(GO) test -race ./...

# Coverage floors for the packages owning serving-path behavior, held a
# few points under current levels (obs 92%, fragserver 95%, core 94%,
# rdfgraph 85% as of the observability PR) so drift is caught without
# flaking on small refactors. `make cover` prints the per-package summary
# and fails if any floor is broken.
COVER_FLOORS = internal/obs=85 internal/fragserver=88 internal/core=88 internal/rdfgraph=78

cover:
	@$(GO) test -cover ./... | tee cover.txt
	@awk -v floors="$(COVER_FLOORS)" ' \
	  BEGIN { n = split(floors, fs, " "); for (i = 1; i <= n; i++) { split(fs[i], kv, "="); floor[kv[1]] = kv[2] } } \
	  $$1 == "ok" && /coverage:/ { \
	    for (p in floor) if ($$2 ~ p "$$") { \
	      pct = $$0; sub(/.*coverage: /, "", pct); sub(/% of statements.*/, "", pct); \
	      printf "%-24s %6.1f%%  (floor %s%%)\n", p, pct, floor[p]; \
	      if (pct + 0 < floor[p]) bad = 1 } } \
	  END { if (bad) { print "FAIL: coverage below floor"; exit 1 } }' cover.txt
	@rm -f cover.txt

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run NONE .

# One benchmark run of the parallel-extraction series only.
bench-parallel:
	$(GO) test -bench FragmentParallel -benchmem -run NONE .

# Machine-readable benchmark trajectory: runs the paper's Fig1–Fig3 and
# table benchmarks and writes repo-root BENCH_<n>.json (name, ns/op, B/op,
# allocs/op, git SHA) with <n> one past the last snapshot — the same
# location `make check` asserts is non-empty.
bench-json:
	$(GO) run ./cmd/benchjson -bench 'Fig|Tab|Containment|Traced|Live' -benchtime 2s -dir .

# The same suite at one iteration each: proves the benchmarks compile and
# the parser still reads their output, writes nothing. Part of `make check`.
bench-json-smoke:
	$(GO) run ./cmd/benchjson -smoke -bench 'Fig|Tab|Containment|Traced|Live'

# Write-heavy serving run on its own: updates/s through incremental
# fragment maintenance at 0/100/1000 open subscriptions, with the post-run
# heap size, snapshotted into the trajectory.
bench-live:
	$(GO) run ./cmd/benchjson -bench LiveUpdates -benchtime 2s -dir . \
		-meta series=live-updates -meta subscriptions=0,100,1000

# Store-tier shard sweep at serving scale: the sharded backend (1/4/16
# shards) against the single backend, snapshotted into the trajectory.
bench-sharded:
	$(GO) run ./cmd/benchjson -bench FragmentSharded -benchtime 2s -dir . \
		-meta backend=store-sweep -meta shards=1,4,16

# The 10M-triple scale acceptance run: streamed sharded load (triples/s)
# plus one-shape extraction at 1/4/16 shards. Needs ~15 GiB of heap and
# tens of minutes; writes one trajectory snapshot.
bench-sharded-10m:
	SHACLFRAG_SCALE_10M=1 $(GO) run ./cmd/benchjson -bench Sharded10M -benchtime 1x -dir . \
		-meta backend=sharded -meta triples=10000000 -meta shards=1,4,16

# Documentation gate: intra-repo markdown links (files and #anchors)
# must resolve and every `-flag` the docs mention must be defined by
# some command under cmd/. Part of `make check`.
docs-check:
	$(GO) run ./cmd/doclint

# Full CI gate: gofmt, vet, build, race tests on the serving-path
# packages, the whole test suite, `shaclfrag lint` over examples/
# (clean schemas silent, examples/lint/ corpus flagged), and the
# documentation linter.
check:
	sh scripts/check.sh

clean:
	$(GO) clean ./...
