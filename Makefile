GO ?= go

.PHONY: build test race vet bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The rdfgraph and core suites include concurrency tests written for the
# race detector; this is the target that gives them teeth.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run NONE .

# One benchmark run of the parallel-extraction series only.
bench-parallel:
	$(GO) test -bench FragmentParallel -benchmem -run NONE .

check: build vet test race

clean:
	$(GO) clean ./...
